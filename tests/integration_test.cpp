// End-to-end integration tests: whole networks under every routing
// strategy of the paper must deliver *exactly* the right documents — the
// optimisations (advertisements, covering, merging) may only change
// traffic and state, never the delivery semantics (paper §4.3: "Clients
// are not exposed to false positives").
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "router/snapshot.hpp"
#include "match/pub_match.hpp"
#include "workload/xml_gen.hpp"
#include "workload/xpath_gen.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

struct Workload {
  // subscriber slot -> its XPEs
  std::vector<std::vector<Xpe>> subscriptions;
  // documents as (paths, bytes)
  std::vector<std::pair<std::vector<Path>, std::size_t>> documents;
};

Workload make_workload(const Dtd& dtd, std::size_t subscribers,
                       std::size_t subs_each, std::size_t docs,
                       std::uint64_t seed) {
  Workload w;
  XpathGenOptions xopts;
  xopts.count = subscribers * subs_each;
  xopts.seed = seed;
  xopts.wildcard_prob = 0.2;
  xopts.descendant_prob = 0.2;
  auto xpes = generate_xpaths(dtd, xopts);
  w.subscriptions.resize(subscribers);
  for (std::size_t i = 0; i < xpes.size(); ++i) {
    w.subscriptions[i % subscribers].push_back(xpes[i]);
  }
  Rng rng(seed + 1);
  for (std::size_t d = 0; d < docs; ++d) {
    XmlDocument doc = generate_document(dtd, rng, {});
    w.documents.emplace_back(extract_paths(doc), doc.byte_size());
  }
  return w;
}

/// Ground truth: which documents must reach subscriber `i`?
std::set<std::size_t> expected_docs(const Workload& w, std::size_t i) {
  std::set<std::size_t> out;
  for (std::size_t d = 0; d < w.documents.size(); ++d) {
    for (const Path& p : w.documents[d].first) {
      for (const Xpe& s : w.subscriptions[i]) {
        if (matches(p, s)) {
          out.insert(d);
          break;
        }
      }
      if (out.count(d)) break;
    }
  }
  return out;
}

struct RunResult {
  std::vector<std::size_t> notifications_per_subscriber;
  std::size_t total_messages = 0;
  std::size_t total_prt = 0;
  std::size_t suppressed = 0;
};

RunResult run_network(const Dtd& dtd, const Workload& w,
                      const RoutingStrategy& strategy, std::size_t levels,
                      std::uint64_t seed) {
  Network::Options options;
  options.topology = complete_binary_tree(levels);
  options.strategy = strategy;
  options.dtd = dtd;
  options.seed = seed;
  options.processing_scale = 0.0;  // deterministic message counts
  options.merge_interval = 5;
  Network net(std::move(options));

  auto leaves = complete_binary_tree(levels).leaf_brokers();
  int publisher = net.add_publisher(0);
  net.run();

  std::vector<int> subscribers;
  for (std::size_t i = 0; i < w.subscriptions.size(); ++i) {
    int sub = net.add_subscriber(leaves[i % leaves.size()]);
    subscribers.push_back(sub);
    for (const Xpe& x : w.subscriptions[i]) net.subscribe(sub, x);
  }
  net.run();

  for (const auto& [paths, bytes] : w.documents) {
    net.publish_paths(publisher, paths, bytes);
  }
  net.run();

  RunResult result;
  for (int sub : subscribers) {
    result.notifications_per_subscriber.push_back(
        net.simulator().notifications_of(sub));
  }
  result.total_messages = net.stats().total_broker_messages();
  result.total_prt = net.total_prt_size();
  result.suppressed = net.stats().suppressed_false_positives();
  return result;
}

class StrategyEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StrategyEquivalence, AllStrategiesDeliverExactlyTheGroundTruth) {
  Dtd dtd = psd_dtd();
  Workload w = make_workload(dtd, /*subscribers=*/4, /*subs_each=*/12,
                             /*docs=*/8, GetParam());

  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < w.subscriptions.size(); ++i) {
    expected.push_back(expected_docs(w, i).size());
  }

  for (const StrategySpec& spec : paper_strategy_matrix(0.1)) {
    RunResult r = run_network(dtd, w, spec.strategy, /*levels=*/3, GetParam());
    ASSERT_EQ(r.notifications_per_subscriber.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(r.notifications_per_subscriber[i], expected[i])
          << spec.name << " subscriber " << i << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyEquivalence,
                         ::testing::Values(101, 202, 303));

TEST(StrategyEffects, AdvertisementsReduceSubscriptionTraffic) {
  Dtd dtd = psd_dtd();
  Workload w = make_workload(dtd, 4, 16, 4, 42);
  RunResult flood = run_network(dtd, w, RoutingStrategy::no_adv_no_cov(), 3, 1);
  RunResult adv = run_network(dtd, w, RoutingStrategy::with_adv_no_cov(), 3, 1);
  // Advertisement-based routing stops subscription flooding; with a single
  // publisher the subscription traffic must shrink, though advertisement
  // flooding itself adds messages.
  EXPECT_LT(adv.total_prt, flood.total_prt);
}

TEST(StrategyEffects, CoveringShrinksRoutingState) {
  Dtd dtd = psd_dtd();
  Workload w = make_workload(dtd, 4, 40, 2, 77);
  RunResult plain = run_network(dtd, w, RoutingStrategy::with_adv_no_cov(), 3, 1);
  RunResult covering =
      run_network(dtd, w, RoutingStrategy::with_adv_with_cov(), 3, 1);
  EXPECT_LT(covering.total_prt, plain.total_prt);
  EXPECT_LE(covering.total_messages, plain.total_messages);
}

TEST(StrategyEffects, MergingShrinksFurtherAndStaysExact) {
  Dtd dtd = psd_dtd();
  Workload w = make_workload(dtd, 4, 40, 6, 99);
  RunResult covering =
      run_network(dtd, w, RoutingStrategy::with_adv_with_cov(), 3, 1);
  RunResult merging =
      run_network(dtd, w, RoutingStrategy::with_adv_with_cov_ipm(0.15), 3, 1);
  EXPECT_LE(merging.total_prt, covering.total_prt);
  // Imperfect merging may create in-network false positives, but they are
  // suppressed at the edge (delivery equality is asserted above).
}

TEST(Integration, UnsubscriptionStopsDelivery) {
  Network::Options options;
  options.topology = chain(3);
  options.strategy = RoutingStrategy::with_adv_with_cov();
  options.dtd = psd_dtd();
  options.processing_scale = 0.0;
  Network net(std::move(options));
  int publisher = net.add_publisher(0);
  int subscriber = net.add_subscriber(2);
  net.run();
  Xpe x = parse_xpe("//sequence");
  net.subscribe(subscriber, x);
  net.run();
  net.publish_paths(publisher,
                    {parse_path("/ProteinDatabase/ProteinEntry/sequence")}, 64);
  net.run();
  EXPECT_EQ(net.simulator().notifications_of(subscriber), 1u);

  net.unsubscribe(subscriber, x);
  net.run();
  net.publish_paths(publisher,
                    {parse_path("/ProteinDatabase/ProteinEntry/sequence")}, 64);
  net.run();
  EXPECT_EQ(net.simulator().notifications_of(subscriber), 1u);  // unchanged
}

TEST(Integration, NewsWorkloadWithRecursiveAdvertisements) {
  // The recursive DTD exercises recursive-advertisement matching in the
  // SRT end to end.
  Dtd dtd = news_dtd();
  Workload w = make_workload(dtd, 2, 10, 5, 555);
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < w.subscriptions.size(); ++i) {
    expected.push_back(expected_docs(w, i).size());
  }
  RunResult r =
      run_network(dtd, w, RoutingStrategy::with_adv_with_cov(), 2, 9);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(r.notifications_per_subscriber[i], expected[i]) << i;
  }
}

TEST(Integration, UniversalCovererDoesNotBlackholeSiblings) {
  // Regression: a broad subscription ("/ProteinDatabase/..." covering
  // everything) arriving from one leaf used to absorb other subscribers'
  // XPEs at intermediate brokers *globally*, cutting the route for
  // publications originating near the broad subscriber. The covering
  // decision must be per interface.
  Network::Options options;
  options.topology = complete_binary_tree(3);
  options.strategy = RoutingStrategy::no_adv_with_cov();
  options.dtd = psd_dtd();
  options.processing_scale = 0.0;
  Network net(std::move(options));

  // Publisher shares leaf broker 5 with the broad subscriber.
  int publisher = net.add_publisher(5);
  net.run();
  int broad = net.add_subscriber(5);
  net.subscribe(broad, parse_xpe("/ProteinDatabase"));  // covers everything
  net.run();
  int narrow = net.add_subscriber(3);
  net.subscribe(narrow, parse_xpe("//header/uid"));
  net.run();

  net.publish_paths(publisher,
                    {parse_path("/ProteinDatabase/ProteinEntry/header/uid")},
                    64);
  net.run();
  EXPECT_EQ(net.simulator().notifications_of(broad), 1u);
  EXPECT_EQ(net.simulator().notifications_of(narrow), 1u);

  // Same situation with the subscription order reversed.
  net.publish_paths(publisher,
                    {parse_path("/ProteinDatabase/ProteinEntry/sequence")},
                    64);
  net.run();
  EXPECT_EQ(net.simulator().notifications_of(broad), 2u);
  EXPECT_EQ(net.simulator().notifications_of(narrow), 1u);
}

class StrategyEquivalenceLarge : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StrategyEquivalenceLarge, DenseCoveringWorkloadStaysExact) {
  // The covering-dense regime (broad wildcard queries covering most of the
  // set) that exposed the per-interface covering bug.
  Dtd dtd = psd_dtd();
  Workload w;
  XpathGenOptions xopts;
  xopts.count = 4 * 120;
  xopts.seed = GetParam();
  xopts.leaf_only = true;
  xopts.wildcard_prob = 0.25;
  xopts.descendant_prob = 0.15;
  auto xpes = generate_xpaths(dtd, xopts);
  w.subscriptions.resize(4);
  for (std::size_t i = 0; i < xpes.size(); ++i) {
    w.subscriptions[i % 4].push_back(xpes[i]);
  }
  Rng rng(GetParam() + 1);
  for (int d = 0; d < 6; ++d) {
    XmlDocument doc = generate_document(dtd, rng, {});
    w.documents.emplace_back(extract_paths(doc), doc.byte_size());
  }

  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < w.subscriptions.size(); ++i) {
    expected.push_back(expected_docs(w, i).size());
  }
  for (const StrategySpec& spec : paper_strategy_matrix(0.15)) {
    RunResult r = run_network(dtd, w, spec.strategy, 3, GetParam());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(r.notifications_per_subscriber[i], expected[i])
          << spec.name << " subscriber " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyEquivalenceLarge,
                         ::testing::Values(7, 8));

TEST(Integration, MultiProducerMultiDtdNetwork) {
  // Two producers with different DTDs share one overlay; subscribers of
  // each kind receive exactly their own content.
  Network::Options options;
  options.topology = complete_binary_tree(3);
  options.strategy = RoutingStrategy::with_adv_with_cov();
  options.dtd = news_dtd();
  options.additional_dtds = {psd_dtd()};
  options.processing_scale = 0.0;
  Network net(std::move(options));

  int news_pub = net.add_publisher(3, /*dtd_index=*/0);
  int psd_pub = net.add_publisher(6, /*dtd_index=*/1);
  net.run();
  EXPECT_GT(net.advertisements(0).size(), net.advertisements(1).size());

  int news_sub = net.add_subscriber(4);
  int psd_sub = net.add_subscriber(5);
  int both_sub = net.add_subscriber(3);
  net.subscribe(news_sub, parse_xpe("/news/head/title"));
  net.subscribe(psd_sub, parse_xpe("//sequence"));
  net.subscribe(both_sub, parse_xpe("//title"));
  net.subscribe(both_sub, parse_xpe("//protein/name"));
  net.run();

  Rng rng(12);
  net.publish(news_pub, generate_document(news_dtd(), rng, {}));
  net.publish(psd_pub, generate_document(psd_dtd(), rng, {}));
  net.run();

  EXPECT_EQ(net.simulator().notifications_of(news_sub), 1u);  // news only
  EXPECT_EQ(net.simulator().notifications_of(psd_sub), 1u);   // psd only
  EXPECT_EQ(net.simulator().notifications_of(both_sub), 2u);  // one of each
}

TEST(Integration, BrokerRestartFromSnapshotKeepsRouting) {
  Network::Options options;
  options.topology = chain(3);
  options.strategy = RoutingStrategy::with_adv_with_cov();
  options.dtd = psd_dtd();
  options.processing_scale = 0.0;
  Network net(std::move(options));
  int publisher = net.add_publisher(0);
  int subscriber = net.add_subscriber(2);
  net.run();
  net.subscribe(subscriber, parse_xpe("//sequence"));
  net.run();

  Path p = parse_path("/ProteinDatabase/ProteinEntry/sequence");
  net.publish_paths(publisher, {p}, 64);
  net.run();
  ASSERT_EQ(net.simulator().notifications_of(subscriber), 1u);

  // Snapshot the middle broker, crash-restart it, restore: routing is
  // uninterrupted.
  std::string snapshot = snapshot_to_string(net.simulator().broker(1));
  net.simulator().restart_broker(1, snapshot);
  net.publish_paths(publisher, {p}, 64);
  net.run();
  EXPECT_EQ(net.simulator().notifications_of(subscriber), 2u);

  // A cold restart (no snapshot) loses the routing state: the next
  // publication is dropped at the amnesiac broker.
  net.simulator().restart_broker(1);
  net.publish_paths(publisher, {p}, 64);
  net.run();
  EXPECT_EQ(net.simulator().notifications_of(subscriber), 2u);
}

TEST(Integration, CyclicOverlayStaysExact) {
  // A random connected overlay WITH cycles: duplicate suppression keeps
  // deliveries exact and loop-free under every routing strategy.
  Dtd dtd = psd_dtd();
  Workload w = make_workload(dtd, 4, 10, 6, 404);
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < w.subscriptions.size(); ++i) {
    expected.push_back(expected_docs(w, i).size());
  }

  Rng topo_rng(7);
  Topology topology = random_connected(10, 6, topo_rng);  // 9+6 edges
  ASSERT_GT(topology.edges.size(), topology.num_brokers - 1);

  for (const StrategySpec& spec : paper_strategy_matrix(0.1)) {
    Network::Options options;
    options.topology = topology;
    options.strategy = spec.strategy;
    options.dtd = dtd;
    options.processing_scale = 0.0;
    Network net(std::move(options));
    int publisher = net.add_publisher(0);
    net.run();
    std::vector<int> subscribers;
    for (std::size_t i = 0; i < w.subscriptions.size(); ++i) {
      int sub = net.add_subscriber(static_cast<int>(4 + i));
      subscribers.push_back(sub);
      for (const Xpe& x : w.subscriptions[i]) net.subscribe(sub, x);
    }
    net.run();
    for (const auto& [paths, bytes] : w.documents) {
      net.publish_paths(publisher, paths, bytes);
    }
    net.run();
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(net.simulator().notifications_of(subscribers[i]), expected[i])
          << spec.name << " subscriber " << i;
    }
  }
}

TEST(Integration, LateSubscriberStillServed) {
  // Subscriptions arriving after publications only see later documents;
  // subscriptions arriving after the advertisement flood must still be
  // routed correctly (the SRT pull path).
  Network::Options options;
  options.topology = complete_binary_tree(3);
  options.strategy = RoutingStrategy::with_adv_with_cov();
  options.dtd = psd_dtd();
  options.processing_scale = 0.0;
  Network net(std::move(options));
  int publisher = net.add_publisher(3);
  net.run();

  int early = net.add_subscriber(5);
  net.subscribe(early, parse_xpe("//uid"));
  net.run();
  net.publish_paths(publisher,
                    {parse_path("/ProteinDatabase/ProteinEntry/header/uid")},
                    32);
  net.run();

  int late = net.add_subscriber(6);
  net.subscribe(late, parse_xpe("//uid"));
  net.run();
  net.publish_paths(publisher,
                    {parse_path("/ProteinDatabase/ProteinEntry/header/uid")},
                    32);
  net.run();

  EXPECT_EQ(net.simulator().notifications_of(early), 2u);
  EXPECT_EQ(net.simulator().notifications_of(late), 1u);
}

}  // namespace
}  // namespace xroute
