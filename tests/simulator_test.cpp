// Unit tests for the event queue, topologies and simulator transport.
#include <gtest/gtest.h>

#include "core/network.hpp"
#include "net/event_queue.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "workload/xml_gen.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

TEST(EventQueueTest, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(10); });  // FIFO at equal time
  q.schedule(0.5, [&] { order.push_back(0); });
  double t = 0;
  while (!q.empty()) q.pop(&t)();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 2}));
  EXPECT_EQ(t, 2.0);
}

TEST(TopologyTest, CompleteBinaryTrees) {
  Topology t3 = complete_binary_tree(3);
  EXPECT_EQ(t3.num_brokers, 7u);  // the paper's small overlay
  EXPECT_EQ(t3.edges.size(), 6u);
  EXPECT_EQ(t3.leaf_brokers().size(), 4u);

  Topology t7 = complete_binary_tree(7);
  EXPECT_EQ(t7.num_brokers, 127u);  // the paper's large overlay
  EXPECT_EQ(t7.edges.size(), 126u);
  EXPECT_EQ(t7.leaf_brokers().size(), 64u);
}

TEST(TopologyTest, ChainAndStar) {
  Topology c = chain(5);
  EXPECT_EQ(c.num_brokers, 5u);
  EXPECT_EQ(c.edges.size(), 4u);
  EXPECT_EQ(c.leaf_brokers(), (std::vector<int>{0, 4}));
  Topology s = star(6);
  EXPECT_EQ(s.num_brokers, 7u);
  EXPECT_EQ(s.leaf_brokers().size(), 6u);
}

TEST(TopologyTest, LatencyProfiles) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    LinkConfig cluster = sample_link(LatencyProfile::kCluster, rng);
    EXPECT_GE(cluster.latency_ms, 0.3);
    EXPECT_LE(cluster.latency_ms, 0.7);
    LinkConfig wan = sample_link(LatencyProfile::kPlanetLab, rng);
    EXPECT_GE(wan.latency_ms, 1.0);
    EXPECT_LE(wan.latency_ms, 3.5);
    EXPECT_GT(cluster.bytes_per_ms, wan.bytes_per_ms);
  }
}

TEST(SimulatorTest, EndToEndSingleBroker) {
  Simulator sim(Simulator::Options{0.0});
  Broker::Config config;
  config.use_advertisements = false;
  int b0 = sim.add_broker(config);
  int subscriber = sim.attach_client(b0);
  int publisher = sim.attach_client(b0);

  sim.subscribe(subscriber, parse_xpe("/a/b"));
  sim.run();
  sim.publish_paths(publisher, {parse_path("/a/b/c")}, 100);
  sim.run();

  EXPECT_EQ(sim.notifications_of(subscriber), 1u);
  EXPECT_EQ(sim.stats().notifications(), 1u);
  ASSERT_EQ(sim.stats().delays().size(), 1u);
  EXPECT_GT(sim.stats().delays()[0], 0.0);  // two link traversals
}

TEST(SimulatorTest, MultiHopDeliveryAndDelay) {
  Simulator sim(Simulator::Options{0.0});
  Broker::Config config;
  config.use_advertisements = false;
  // 3-broker chain with known latencies.
  for (int i = 0; i < 3; ++i) sim.add_broker(config);
  LinkConfig link;
  link.latency_ms = 2.0;
  link.bytes_per_ms = 1e9;  // negligible transfer time
  sim.connect(0, 1, link);
  sim.connect(1, 2, link);
  int subscriber = sim.attach_client(2, link);
  int publisher = sim.attach_client(0, link);

  sim.subscribe(subscriber, parse_xpe("/a"));
  sim.run();
  sim.publish_paths(publisher, {parse_path("/a/b")}, 10);
  sim.run();

  ASSERT_EQ(sim.stats().notifications(), 1u);
  // 4 links x 2ms, plus ~0 transfer: within a small tolerance.
  EXPECT_NEAR(sim.stats().delays()[0], 8.0, 0.5);
}

TEST(SimulatorTest, DuplicatePathsOfOneDocCountOnce) {
  Simulator sim(Simulator::Options{0.0});
  Broker::Config config;
  config.use_advertisements = false;
  int b0 = sim.add_broker(config);
  int subscriber = sim.attach_client(b0);
  int publisher = sim.attach_client(b0);
  sim.subscribe(subscriber, parse_xpe("/a"));
  sim.run();
  sim.publish_paths(publisher, {parse_path("/a/b"), parse_path("/a/c")}, 10);
  sim.run();
  EXPECT_EQ(sim.stats().notifications(), 1u);
  EXPECT_EQ(sim.stats().duplicate_notifications(), 1u);
}

TEST(SimulatorTest, MessageAccounting) {
  Simulator sim(Simulator::Options{0.0});
  Broker::Config config;
  config.use_advertisements = false;
  for (int i = 0; i < 2; ++i) sim.add_broker(config);
  sim.connect(0, 1, LinkConfig{});
  int subscriber = sim.attach_client(1);
  int publisher = sim.attach_client(0);

  sim.subscribe(subscriber, parse_xpe("/a"));
  sim.run();
  // Subscription: received by broker 1, flooded to broker 0 -> 2 receipts.
  EXPECT_EQ(sim.stats().broker_messages(MessageType::kSubscribe), 2u);

  sim.publish_paths(publisher, {parse_path("/a/x")}, 10);
  sim.run();
  EXPECT_EQ(sim.stats().broker_messages(MessageType::kPublish), 2u);
}

TEST(SimulatorTest, WireBytesSlowLinkAddsDelay) {
  Simulator sim(Simulator::Options{0.0});
  Broker::Config config;
  config.use_advertisements = false;
  int b0 = sim.add_broker(config);
  LinkConfig slow;
  slow.latency_ms = 1.0;
  slow.bytes_per_ms = 100.0;  // 100 B/ms
  int subscriber = sim.attach_client(b0, slow);
  int publisher = sim.attach_client(b0, slow);
  sim.subscribe(subscriber, parse_xpe("/a"));
  sim.run();
  // ~10 KB document: ~100 ms transfer per hop.
  sim.publish_paths(publisher, {parse_path("/a/b")}, 10000);
  sim.run();
  ASSERT_EQ(sim.stats().notifications(), 1u);
  EXPECT_GT(sim.stats().delays()[0], 150.0);
}

TEST(NetworkFacadeTest, QuickEndToEnd) {
  Network::Options options;
  options.topology = complete_binary_tree(2);  // 3 brokers
  options.strategy = RoutingStrategy::with_adv_with_cov();
  options.dtd = psd_dtd();
  options.processing_scale = 0.0;
  Network net(std::move(options));

  int publisher = net.add_publisher(0);
  int subscriber = net.add_subscriber(2);
  net.run();
  net.subscribe(subscriber, parse_xpe("//sequence"));
  net.run();

  Rng rng(3);
  XmlDocument doc = generate_document(psd_dtd(), rng, {});
  net.publish(publisher, doc);
  net.run();
  EXPECT_EQ(net.simulator().notifications_of(subscriber), 1u);
  EXPECT_GT(net.advertisements().size(), 10u);
  EXPECT_GT(net.total_prt_size(), 0u);
}

}  // namespace
}  // namespace xroute
