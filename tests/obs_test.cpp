// Observability layer: percentile edge cases, the metrics registry, the
// exporters, and the zero-overhead contract (tracing must not move a
// single message or byte against the pre-observability golden run).
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "net/golden.hpp"
#include "net/simulator.hpp"
#include "net/stats.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/percentile.hpp"
#include "obs/trace.hpp"

namespace xroute {
namespace {

// -- Nearest-rank percentile -------------------------------------------------

TEST(Percentile, EmptyIsZero) {
  EXPECT_EQ(percentile_nearest_rank({}, 0.5), 0.0);
}

TEST(Percentile, SingleSampleIsEveryPercentile) {
  // The n=1 edge case: any quantile of one sample is that sample
  // (the old implementation indexed past the end for high quantiles).
  std::vector<double> one{42.0};
  EXPECT_EQ(percentile_nearest_rank(one, 0.0), 42.0);
  EXPECT_EQ(percentile_nearest_rank(one, 0.5), 42.0);
  EXPECT_EQ(percentile_nearest_rank(one, 0.95), 42.0);
  EXPECT_EQ(percentile_nearest_rank(one, 1.0), 42.0);
}

TEST(Percentile, TwoSamples) {
  std::vector<double> two{1.0, 2.0};
  // rank = ceil(q * 2): p50 -> rank 1, anything above -> rank 2.
  EXPECT_EQ(percentile_nearest_rank(two, 0.50), 1.0);
  EXPECT_EQ(percentile_nearest_rank(two, 0.51), 2.0);
  EXPECT_EQ(percentile_nearest_rank(two, 0.95), 2.0);
}

TEST(Percentile, SmallCounts) {
  std::vector<double> four{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(percentile_nearest_rank(four, 0.50), 2.0);
  EXPECT_EQ(percentile_nearest_rank(four, 0.95), 4.0);
  std::vector<double> five{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_EQ(percentile_nearest_rank(five, 0.50), 3.0);
  EXPECT_EQ(percentile_nearest_rank(five, 0.95), 5.0);
}

TEST(Percentile, TwentySamples) {
  std::vector<double> v;
  for (int i = 1; i <= 20; ++i) v.push_back(i);
  EXPECT_EQ(percentile_nearest_rank(v, 0.50), 10.0);  // ceil(0.50*20) = 10
  EXPECT_EQ(percentile_nearest_rank(v, 0.95), 19.0);  // ceil(0.95*20) = 19
  EXPECT_EQ(percentile_nearest_rank(v, 1.00), 20.0);
}

TEST(Percentile, DuplicatedValues) {
  // p95 on duplicates: the rank falls inside the run of equal values and
  // must return that value, not step past it.
  std::vector<double> v{5.0, 5.0, 5.0, 5.0, 9.0};
  EXPECT_EQ(percentile_nearest_rank(v, 0.50), 5.0);
  EXPECT_EQ(percentile_nearest_rank(v, 0.80), 5.0);
  EXPECT_EQ(percentile_nearest_rank(v, 0.95), 9.0);
  std::vector<double> all_same(10, 3.0);
  EXPECT_EQ(percentile_nearest_rank(all_same, 0.95), 3.0);
}

TEST(DelaySummary, SingleDelayPinsBothPercentiles) {
  NetworkStats stats;
  stats.count_notification(7.5);
  DelaySummary s = stats.delay_summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.p50_ms, 7.5);
  EXPECT_EQ(s.p95_ms, 7.5);
  EXPECT_EQ(s.min_ms, 7.5);
  EXPECT_EQ(s.max_ms, 7.5);
}

TEST(DelaySummary, PinnedPercentiles) {
  NetworkStats stats;
  // Out of order on purpose: the summary must sort.
  for (double d : {4.0, 1.0, 3.0, 2.0, 5.0}) stats.count_notification(d);
  DelaySummary s = stats.delay_summary();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.p50_ms, 3.0);
  EXPECT_EQ(s.p95_ms, 5.0);
  EXPECT_EQ(s.min_ms, 1.0);
  EXPECT_EQ(s.max_ms, 5.0);
  EXPECT_DOUBLE_EQ(s.mean_ms, 3.0);
}

// -- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistry, CountersAndLabelledSeries) {
  MetricsRegistry reg;
  Counter& plain = reg.counter("broker.messages");
  Counter& publish = reg.counter("broker.messages", {{"type", "publish"}});
  plain.inc();
  publish.inc(3);
  EXPECT_EQ(reg.counter("broker.messages").value(), 1u);
  EXPECT_EQ(reg.counter("broker.messages", {{"type", "publish"}}).value(), 3u);
  EXPECT_EQ(reg.counter_total("broker.messages"), 4u);
  EXPECT_EQ(reg.find_counter("broker.messages", {{"type", "subscribe"}}),
            nullptr);
}

TEST(MetricsRegistry, ReferencesStayValidAcrossInserts) {
  // The hot-path contract: NetworkStats caches Counter&; inserting more
  // series must not invalidate it.
  MetricsRegistry reg;
  Counter& first = reg.counter("a.first");
  for (int i = 0; i < 100; ++i) {
    reg.counter("a.series", {{"i", std::to_string(i)}});
  }
  first.inc(5);
  EXPECT_EQ(reg.counter("a.first").value(), 5u);
}

TEST(MetricsRegistry, HistogramPercentilesUseNearestRank) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("client.delay_ms");
  h.observe(10.0);
  EXPECT_EQ(h.percentile(0.95), 10.0);  // n=1 edge case, shared helper
  h.observe(20.0);
  h.observe(30.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.percentile(0.50), 20.0);
  EXPECT_EQ(h.percentile(0.95), 30.0);
  EXPECT_EQ(h.min(), 10.0);
  EXPECT_EQ(h.max(), 30.0);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  // Samples keep observation order (they back NetworkStats::delays()).
  EXPECT_EQ(h.samples(), (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(MetricsRegistry, JsonDump) {
  MetricsRegistry reg;
  reg.counter("broker.messages", {{"type", "publish"}}).inc(7);
  reg.gauge("broker.processing_ms").set(1.5);
  reg.histogram("client.delay_ms").observe(2.0);
  std::ostringstream os;
  reg.write_json(os);
  std::string json = os.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"broker.messages\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"publish\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
}

TEST(MetricsRegistry, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
}

// -- NetworkStats as a registry facade ---------------------------------------

TEST(NetworkStats, PerTypeSeriesBackTheAccessors) {
  NetworkStats stats;
  stats.count_broker_message(MessageType::kPublish, 100);
  stats.count_broker_message(MessageType::kPublish, 50);
  stats.count_broker_message(MessageType::kSubscribe, 10);
  EXPECT_EQ(stats.total_broker_messages(), 3u);
  EXPECT_EQ(stats.total_broker_bytes(), 160u);
  EXPECT_EQ(stats.broker_messages(MessageType::kPublish), 2u);
  EXPECT_EQ(stats.broker_bytes(MessageType::kPublish), 150u);
  const Counter* series = stats.registry().find_counter(
      "broker.messages", {{"type", "publish"}});
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->value(), 2u);
}

TEST(NetworkStats, PerBrokerSeries) {
  NetworkStats stats;
  stats.count_broker_message(MessageType::kPublish, 100, /*broker=*/2);
  stats.count_broker_message(MessageType::kPublish, 100, /*broker=*/2);
  stats.count_broker_message(MessageType::kSubscribe, 10, /*broker=*/0);
  // The per-broker labelled series carry the same events...
  const Counter* b2 =
      stats.registry().find_counter("broker.messages", {{"broker", "2"}});
  ASSERT_NE(b2, nullptr);
  EXPECT_EQ(b2->value(), 2u);
  const Counter* b2_bytes =
      stats.registry().find_counter("broker.bytes", {{"broker", "2"}});
  ASSERT_NE(b2_bytes, nullptr);
  EXPECT_EQ(b2_bytes->value(), 200u);
  // ...and the per-type totals are unchanged by the extra dimension.
  EXPECT_EQ(stats.total_broker_messages(), 3u);
  EXPECT_EQ(stats.total_broker_bytes(), 210u);
}

TEST(NetworkStats, PerLinkRetransmitSeries) {
  NetworkStats stats;
  stats.count_retransmit(4);
  stats.count_retransmit(4);
  stats.count_retransmit(9);
  EXPECT_EQ(stats.retransmits(), 3u);
  const Counter* e4 =
      stats.registry().find_counter("link.retransmits", {{"endpoint", "4"}});
  ASSERT_NE(e4, nullptr);
  EXPECT_EQ(e4->value(), 2u);
}

// -- Zero-overhead contract ---------------------------------------------------

TEST(ZeroOverhead, CleanRunMatchesPreObservabilityGolden) {
  // These totals were captured before src/obs existed. If this fails, the
  // observability layer changed what the network does — which it must not.
  EXPECT_EQ(run_golden_scenario(/*tracing=*/false), golden_expected());
}

#if XROUTE_TRACING_ENABLED
TEST(ZeroOverhead, TracedRunIsByteIdentical) {
  Simulator sim(Simulator::Options{0.0});
  sim.enable_tracing();
  EXPECT_EQ(run_golden_scenario(sim), golden_expected());
  // ...while actually having traced the whole run.
  ASSERT_NE(sim.tracer(), nullptr);
  EXPECT_GT(sim.tracer()->trace_count(), 0u);
  EXPECT_GT(sim.tracer()->spans().size(), 0u);
}

TEST(ZeroOverhead, GoldenRunPerBrokerSeriesSumToTotal) {
  Simulator sim(Simulator::Options{0.0});
  GoldenTotals totals = run_golden_scenario(sim);
  std::uint64_t per_broker = 0;
  for (std::size_t b = 0; b < sim.broker_count(); ++b) {
    const Counter* c = sim.stats().registry().find_counter(
        "broker.messages", {{"broker", std::to_string(b)}});
    ASSERT_NE(c, nullptr) << "broker " << b << " has no series";
    per_broker += c->value();
  }
  EXPECT_EQ(per_broker, totals.messages);
}

// -- Exporter smoke tests -----------------------------------------------------

TEST(Exporters, PerTraceJsonAndChromeTrace) {
  Simulator sim(Simulator::Options{0.0});
  sim.enable_tracing();
  run_golden_scenario(sim);

  std::ostringstream trace_json;
  write_trace_json(*sim.tracer(), 1, trace_json);
  std::string json = trace_json.str();
  EXPECT_NE(json.find("\"inject\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);

  std::ostringstream chrome;
  write_chrome_trace(*sim.tracer(), chrome);
  std::string events = chrome.str();
  ASSERT_FALSE(events.empty());
  EXPECT_NE(events.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(events.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(events.find("process_name"), std::string::npos);
}
#else
TEST(ZeroOverhead, EnableTracingThrowsWhenCompiledOut) {
  Simulator sim(Simulator::Options{0.0});
  EXPECT_THROW(sim.enable_tracing(), std::logic_error);
}
#endif

}  // namespace
}  // namespace xroute
