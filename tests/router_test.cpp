// Unit tests for the broker: SRT/PRT behaviour, advertisement flooding,
// advertisement-directed subscription forwarding, covering-based
// absorption and unsubscription, publication routing, edge exactness.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "adv/derive.hpp"
#include "dtd/parser.hpp"
#include "match/pub_match.hpp"
#include "router/broker.hpp"
#include "util/rng.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/xml_gen.hpp"
#include "workload/xpath_gen.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

Xpe X(const char* s) { return parse_xpe(s); }

Message pub(const char* path) {
  static std::uint64_t next_doc_id = 1;
  PublishMsg msg;
  msg.path = parse_path(path);
  msg.doc_id = next_doc_id++;  // distinct: brokers deduplicate repeats
  return Message{msg};
}

/// Interfaces forwarded to, for messages of one type.
std::vector<IfaceId> targets(const Broker::HandleResult& result,
                             MessageType type) {
  std::vector<IfaceId> out;
  for (const auto& fwd : result.forwards) {
    if (fwd.message.type() == type) out.push_back(fwd.interface);
  }
  std::sort(out.begin(), out.end());
  return out;
}

constexpr IfaceId kLeft{1}, kRight{2}, kUp{3}, kClient{10}, kClient2{11};

Broker make_broker(Broker::Config config) {
  Broker broker(0, config);
  broker.add_neighbor(kLeft);
  broker.add_neighbor(kRight);
  broker.add_neighbor(kUp);
  broker.add_client(kClient);
  broker.add_client(kClient2);
  return broker;
}

TEST(BrokerAdvertise, FloodsOnceToOtherNeighbors) {
  Broker broker = make_broker({});
  Advertisement adv = Advertisement::from_elements({"a", "b"});
  auto r1 = broker.handle(kUp, Message::advertise(adv, 7));
  EXPECT_EQ(targets(r1, MessageType::kAdvertise),
            (std::vector<IfaceId>{kLeft, kRight}));
  EXPECT_EQ(broker.srt_size(), 1u);
  // Same advertisement from another hop: recorded, not re-flooded.
  auto r2 = broker.handle(kLeft, Message::advertise(adv, 8));
  EXPECT_TRUE(targets(r2, MessageType::kAdvertise).empty());
  EXPECT_EQ(broker.srt_size(), 1u);
}

TEST(BrokerSubscribe, FollowsAdvertisements) {
  Broker broker = make_broker({});
  broker.handle(kUp, Message::advertise(Advertisement::from_elements({"a", "b"}), 7));
  broker.handle(kLeft, Message::advertise(Advertisement::from_elements({"x", "y"}), 8));

  // A subscription overlapping only the first advertisement goes to kUp.
  auto r = broker.handle(kClient, Message::subscribe(X("/a/b")));
  EXPECT_EQ(targets(r, MessageType::kSubscribe), (std::vector<IfaceId>{kUp}));

  // One overlapping nothing goes nowhere.
  auto r2 = broker.handle(kClient, Message::subscribe(X("/q")));
  EXPECT_TRUE(targets(r2, MessageType::kSubscribe).empty());

  // One overlapping both goes to both.
  auto r3 = broker.handle(kClient, Message::subscribe(X("*")));
  EXPECT_EQ(targets(r3, MessageType::kSubscribe),
            (std::vector<IfaceId>{kLeft, kUp}));
}

TEST(BrokerSubscribe, FloodsWithoutAdvertisements) {
  Broker::Config config;
  config.use_advertisements = false;
  Broker broker = make_broker(config);
  auto r = broker.handle(kClient, Message::subscribe(X("/a")));
  EXPECT_EQ(targets(r, MessageType::kSubscribe),
            (std::vector<IfaceId>{kLeft, kRight, kUp}));
  // Broker-to-broker: exclude the arrival interface.
  auto r2 = broker.handle(kLeft, Message::subscribe(X("/b")));
  EXPECT_EQ(targets(r2, MessageType::kSubscribe),
            (std::vector<IfaceId>{kRight, kUp}));
}

TEST(BrokerSubscribe, CoveredSubscriptionAbsorbed) {
  Broker::Config config;
  config.use_advertisements = false;
  Broker broker = make_broker(config);
  broker.handle(kClient, Message::subscribe(X("/a")));
  // Covered by /a: not forwarded.
  auto r = broker.handle(kClient2, Message::subscribe(X("/a/b")));
  EXPECT_TRUE(targets(r, MessageType::kSubscribe).empty());
  EXPECT_EQ(broker.prt_size(), 2u);
}

TEST(BrokerSubscribe, CoveringSubscriptionUnsubscribesCovered) {
  Broker::Config config;
  config.use_advertisements = false;
  Broker broker = make_broker(config);
  broker.handle(kClient, Message::subscribe(X("/a/b")));
  broker.handle(kClient, Message::subscribe(X("/a/c")));
  // The newcomer covers both: they are unsubscribed upstream, it is sent.
  auto r = broker.handle(kClient2, Message::subscribe(X("/a")));
  EXPECT_EQ(targets(r, MessageType::kSubscribe),
            (std::vector<IfaceId>{kLeft, kRight, kUp}));
  auto unsubs = targets(r, MessageType::kUnsubscribe);
  EXPECT_EQ(unsubs.size(), 6u);  // two covered subs x three neighbours
}

TEST(BrokerSubscribe, NoCoveringModeForwardsEverything) {
  Broker::Config config;
  config.use_advertisements = false;
  config.use_covering = false;
  Broker broker = make_broker(config);
  broker.handle(kClient, Message::subscribe(X("/a")));
  auto r = broker.handle(kClient2, Message::subscribe(X("/a/b")));
  EXPECT_EQ(targets(r, MessageType::kSubscribe).size(), 3u);
  EXPECT_EQ(broker.prt_size(), 2u);
}

TEST(BrokerSubscribe, DuplicateForwardsOnlyTowardEarlierArrivals) {
  Broker::Config config;
  config.use_advertisements = false;
  Broker broker = make_broker(config);
  auto r1 = broker.handle(kLeft, Message::subscribe(X("/a")));
  EXPECT_EQ(targets(r1, MessageType::kSubscribe).size(), 2u);
  // Same XPE from another interface: the only forward is back toward the
  // first arrival, so publications on that side start routing here too.
  auto r2 = broker.handle(kRight, Message::subscribe(X("/a")));
  EXPECT_EQ(targets(r2, MessageType::kSubscribe),
            (std::vector<IfaceId>{kLeft}));
  // Every interface has now been sent to exactly once; a third holder
  // adds nothing.
  auto r3 = broker.handle(kUp, Message::subscribe(X("/a")));
  EXPECT_TRUE(targets(r3, MessageType::kSubscribe).empty());
}

TEST(BrokerAdvertise, LateAdvertisementPullsSubscriptions) {
  Broker broker = make_broker({});
  // Subscription arrives before any advertisement: goes nowhere.
  auto r0 = broker.handle(kClient, Message::subscribe(X("/a/b")));
  EXPECT_TRUE(targets(r0, MessageType::kSubscribe).empty());
  // Matching advertisement arrives over a broker link: the pending
  // subscription is forwarded toward it.
  auto r1 = broker.handle(
      kUp, Message::advertise(Advertisement::from_elements({"a", "b", "c"}), 7));
  EXPECT_EQ(targets(r1, MessageType::kSubscribe), (std::vector<IfaceId>{kUp}));
  // Re-advertising does not re-forward.
  auto r2 = broker.handle(
      kLeft, Message::advertise(Advertisement::from_elements({"a", "b", "c"}), 7));
  EXPECT_TRUE(targets(r2, MessageType::kSubscribe).empty());
}

TEST(BrokerPublish, RoutesAlongPrtAndDelivers) {
  Broker::Config config;
  config.use_advertisements = false;
  Broker broker = make_broker(config);
  broker.handle(kLeft, Message::subscribe(X("/a/b")));
  broker.handle(kClient, Message::subscribe(X("/a")));

  auto r = broker.handle(kUp, pub("/a/b/c"));
  EXPECT_EQ(targets(r, MessageType::kPublish),
            (std::vector<IfaceId>{kLeft, kClient}));
  EXPECT_EQ(r.deliveries, 1u);
  EXPECT_EQ(r.suppressed_false_positives, 0u);

  // Never bounced back to the arrival interface.
  auto r2 = broker.handle(kLeft, pub("/a/b/c"));
  EXPECT_EQ(targets(r2, MessageType::kPublish), (std::vector<IfaceId>{kClient}));
}

TEST(BrokerPublish, NonMatchingDropped) {
  Broker::Config config;
  config.use_advertisements = false;
  Broker broker = make_broker(config);
  broker.handle(kLeft, Message::subscribe(X("/a/b")));
  auto r = broker.handle(kUp, pub("/x/y"));
  EXPECT_TRUE(r.forwards.empty());
}

TEST(BrokerPublish, EdgeDeliveryUsesClientOriginals) {
  Broker::Config config;
  config.use_advertisements = false;
  Broker broker = make_broker(config);
  broker.handle(kClient, Message::subscribe(X("/a/b")));
  broker.handle(kClient, Message::subscribe(X("/a/c")));

  auto r1 = broker.handle(kUp, pub("/a/b"));
  EXPECT_EQ(r1.deliveries, 1u);
  auto r2 = broker.handle(kUp, pub("/a/z"));
  EXPECT_EQ(r2.deliveries, 0u);
}

TEST(BrokerUnsubscribe, RemovesAndPropagates) {
  Broker::Config config;
  config.use_advertisements = false;
  Broker broker = make_broker(config);
  broker.handle(kClient, Message::subscribe(X("/a")));
  auto r = broker.handle(kClient, Message::unsubscribe(X("/a")));
  EXPECT_EQ(targets(r, MessageType::kUnsubscribe).size(), 3u);
  EXPECT_EQ(broker.prt_size(), 0u);
  // Publications no longer delivered.
  auto r2 = broker.handle(kUp, pub("/a/b"));
  EXPECT_TRUE(r2.forwards.empty());
}

TEST(BrokerUnsubscribe, KeepsWhileOtherHopsRemain) {
  Broker::Config config;
  config.use_advertisements = false;
  Broker broker = make_broker(config);
  broker.handle(kLeft, Message::subscribe(X("/a")));
  broker.handle(kRight, Message::subscribe(X("/a")));
  auto r = broker.handle(kLeft, Message::unsubscribe(X("/a")));
  EXPECT_TRUE(targets(r, MessageType::kUnsubscribe).empty());
  EXPECT_EQ(broker.prt_size(), 1u);
}

TEST(BrokerUnsubscribe, ReissuesPreviouslyCoveredChildren) {
  // /a absorbed /a/b; when /a goes away, /a/b must be re-forwarded or
  // upstream brokers lose the route.
  Broker::Config config;
  config.use_advertisements = false;
  Broker broker = make_broker(config);
  broker.handle(kClient, Message::subscribe(X("/a")));
  auto r0 = broker.handle(kClient2, Message::subscribe(X("/a/b")));
  EXPECT_TRUE(targets(r0, MessageType::kSubscribe).empty());  // absorbed

  auto r = broker.handle(kClient, Message::unsubscribe(X("/a")));
  auto resubs = targets(r, MessageType::kSubscribe);
  EXPECT_EQ(resubs.size(), 3u);  // /a/b re-issued to all neighbours
  for (const auto& fwd : r.forwards) {
    if (fwd.message.type() == MessageType::kSubscribe) {
      EXPECT_EQ(std::get<SubscribeMsg>(fwd.message.payload).xpe, X("/a/b"));
    }
  }
}

TEST(BrokerMerging, MergePassEmitsMergerAndUnsubs) {
  Dtd dtd = parse_dtd(R"(
<!ELEMENT r (x)+>
<!ELEMENT x (a | b)>
<!ELEMENT a EMPTY><!ELEMENT b EMPTY>
)");
  PathUniverse universe(dtd);

  Broker::Config config;
  config.use_advertisements = false;
  config.merging_enabled = true;
  config.merge_universe = &universe;
  config.merge_interval = 2;
  Broker broker = make_broker(config);

  broker.handle(kClient, Message::subscribe(X("/r/x/a")));
  auto r = broker.handle(kClient2, Message::subscribe(X("/r/x/b")));
  // The merge pass runs after the second insert: /r/x/* subscribed, both
  // originals unsubscribed.
  bool merger_sent = false;
  for (const auto& fwd : r.forwards) {
    if (fwd.message.type() == MessageType::kSubscribe &&
        std::get<SubscribeMsg>(fwd.message.payload).xpe == X("/r/x/*")) {
      merger_sent = true;
    }
  }
  EXPECT_TRUE(merger_sent);
  EXPECT_EQ(broker.merges_applied(), 1u);
  EXPECT_EQ(broker.prt_size(), 1u);

  // Edge exactness after the merge: /r/x/a still delivered to kClient
  // only; a false positive for both is suppressed... /r/x/* matches any
  // /r/x/? path, but neither client subscribed to /r/x/c.
  auto ra = broker.handle(kUp, pub("/r/x/a"));
  EXPECT_EQ(ra.deliveries, 1u);
  EXPECT_EQ(ra.suppressed_false_positives, 1u);  // kClient2's entry
}

TEST(BrokerUnadvertise, WithdrawsAndFloods) {
  Broker broker = make_broker({});
  Advertisement adv = Advertisement::from_elements({"a", "b"});
  broker.handle(kUp, Message::advertise(adv, 7));
  EXPECT_EQ(broker.srt_size(), 1u);

  auto r = broker.handle(kUp, Message::unadvertise(adv, 7));
  EXPECT_EQ(broker.srt_size(), 0u);
  EXPECT_EQ(targets(r, MessageType::kUnadvertise),
            (std::vector<IfaceId>{kLeft, kRight}));

  // New subscriptions no longer follow the withdrawn advertisement.
  auto r2 = broker.handle(kClient, Message::subscribe(X("/a/b")));
  EXPECT_TRUE(targets(r2, MessageType::kSubscribe).empty());
}

TEST(BrokerUnadvertise, KeptWhileOtherHopsRemain) {
  Broker broker = make_broker({});
  Advertisement adv = Advertisement::from_elements({"a", "b"});
  broker.handle(kUp, Message::advertise(adv, 7));
  broker.handle(kLeft, Message::advertise(adv, 8));

  auto r = broker.handle(kUp, Message::unadvertise(adv, 7));
  EXPECT_EQ(broker.srt_size(), 1u);
  EXPECT_TRUE(targets(r, MessageType::kUnadvertise).empty());

  // The remaining route still guides subscriptions.
  auto r2 = broker.handle(kClient, Message::subscribe(X("/a/b")));
  EXPECT_EQ(targets(r2, MessageType::kSubscribe), (std::vector<IfaceId>{kLeft}));
}

TEST(BrokerUnadvertise, UnknownAdvertisementIgnored) {
  Broker broker = make_broker({});
  Advertisement adv = Advertisement::from_elements({"q"});
  auto r = broker.handle(kUp, Message::unadvertise(adv, 7));
  EXPECT_TRUE(r.forwards.empty());
}

TEST(BrokerClientTable, TracksOriginals) {
  Broker broker = make_broker({});
  broker.handle(kClient, Message::subscribe(X("/a")));
  broker.handle(kClient, Message::subscribe(X("/b")));
  const auto* subs = broker.client_subscriptions(kClient);
  ASSERT_NE(subs, nullptr);
  EXPECT_EQ(subs->size(), 2u);
  broker.handle(kClient, Message::unsubscribe(X("/a")));
  EXPECT_EQ(broker.client_subscriptions(kClient)->size(), 1u);
  EXPECT_EQ(broker.client_subscriptions(kRight), nullptr);
}

// --- Indexed routing tables vs linear-scan reference --------------------

TEST(SrtIndex, FindAndContains) {
  Srt srt;
  Advertisement adv = parse_advertisement("/a/b/c");
  EXPECT_EQ(srt.find(adv), nullptr);
  srt.add(adv, IfaceId{1});
  ASSERT_NE(srt.find(adv), nullptr);
  EXPECT_TRUE(srt.contains(adv));
  EXPECT_EQ(srt.find(adv)->hops, ifaces({1}));
  srt.remove(adv, IfaceId{1});
  EXPECT_FALSE(srt.contains(adv));
}

TEST(SrtIndex, HopsOverlappingEqualsScanOnRandomWorkload) {
  Dtd dtd = corpus_dtd("news");
  DerivedAdvertisements derived = derive_advertisements(dtd);
  ASSERT_FALSE(derived.advertisements.empty());

  XpathGenOptions gen;
  gen.count = 200;
  gen.wildcard_prob = 0.2;
  gen.descendant_prob = 0.2;
  gen.relative_prob = 0.2;

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    gen.seed = seed;
    std::vector<Xpe> queries = generate_xpaths(dtd, gen);
    Srt srt;
    for (std::size_t i = 0; i < derived.advertisements.size(); ++i) {
      srt.add(derived.advertisements[i], IfaceId{static_cast<int>(i % 8)});
    }
    // Churn: withdraw every fourth advertisement so the index rebuilds.
    for (std::size_t i = 0; i < derived.advertisements.size(); i += 4) {
      srt.remove(derived.advertisements[i], IfaceId{static_cast<int>(i % 8)});
    }
    for (const Xpe& q : queries) {
      EXPECT_EQ(srt.hops_overlapping(q), srt.hops_overlapping_scan(q))
          << "query " << q.to_string() << " seed " << seed;
    }
  }
}

TEST(PrtFlatIndex, MatchHopsEqualsScanOnRandomWorkload) {
  Dtd dtd = corpus_dtd("news");
  XpathGenOptions gen;
  gen.count = 400;
  gen.wildcard_prob = 0.2;
  gen.descendant_prob = 0.2;
  gen.relative_prob = 0.2;

  Rng rng(11);
  std::vector<Path> probes;
  for (int d = 0; d < 4; ++d) {
    XmlDocument doc = generate_document(dtd, rng);
    for (Path& p : extract_paths(doc)) probes.push_back(std::move(p));
  }
  ASSERT_FALSE(probes.empty());

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    gen.seed = seed;
    std::vector<Xpe> xpes = generate_xpaths(dtd, gen);
    Prt prt(/*covering=*/false);
    for (std::size_t i = 0; i < xpes.size(); ++i) {
      prt.insert(xpes[i], IfaceId{static_cast<int>(i % 16)});
      // Churn: removals exercise the swap-and-pop index invalidation.
      if (i % 3 == 2) prt.remove(xpes[i - 1], IfaceId{static_cast<int>((i - 1) % 16)});
    }
    for (const Path& p : probes) {
      EXPECT_EQ(prt.match_hops(p), prt.match_hops_scan(p))
          << "path " << p.to_string() << " seed " << seed;
      // match_entries must select exactly the scan's subscriptions.
      std::multiset<std::string> via_entries, via_scan;
      for (const auto& [xpe, hops] : prt.match_entries(p)) {
        via_entries.insert(xpe->to_string());
      }
      for (const Xpe& xpe : prt.all_xpes()) {
        if (matches(p, xpe)) via_scan.insert(xpe.to_string());
      }
      EXPECT_EQ(via_entries, via_scan) << "path " << p.to_string();
    }
  }
}

}  // namespace
}  // namespace xroute
