// Trace-oracle differential test.
//
// Runs a seeded matrix of topologies × fault profiles with the causal
// tracer on, then uses the trace as an independent witness of what the
// network did:
//
//   * every publication's delivery set, reconstructed purely from deliver
//     spans, must equal the simulator's own delivery records;
//   * span counts must equal the NetworkStats totals (broker messages and
//     bytes, notifications, duplicates, retransmissions);
//   * every span tree must be well-formed: unique ids, exactly one root
//     per trace (the inject span), parents recorded before children in
//     the same trace, and monotone timestamps.
//
// The invariants hold on every cell — clean, lossy, or crashing — because
// the tracer observes the same events the stats counters do; any drift
// between the two is a bug in one of them.
#include <gtest/gtest.h>

#include "obs/trace.hpp"

#if XROUTE_TRACING_ENABLED

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

struct TraceCase {
  std::string name;
  std::string plan;  ///< fault-plan text (net/fault.hpp); empty = clean run
};

std::string case_name(const testing::TestParamInfo<TraceCase>& info) {
  return info.param.name;
}

class TraceOracle : public testing::TestWithParam<TraceCase> {};

/// The faultsim workload (tools/xroutectl) with tracing on: subscribers
/// scattered over the overlay, one publisher, `documents` two-path
/// publications so duplicate-suppression paths are exercised too.
void run_workload(Simulator& sim, const FaultPlan& plan, bool faulted,
                  std::vector<int>* subscribers) {
  Rng rng(plan.seed);
  Topology topology;
  if (plan.topology == "tree") {
    topology = complete_binary_tree(plan.topology_size);
  } else if (plan.topology == "chain") {
    topology = chain(plan.topology_size);
  } else if (plan.topology == "star") {
    topology = star(plan.topology_size);
  } else {
    topology = random_connected(plan.topology_size, 0, rng);
  }

  Broker::Config config;
  config.use_advertisements = false;
  for (std::size_t i = 0; i < topology.num_brokers; ++i) sim.add_broker(config);
  for (auto [a, b] : topology.edges) sim.connect(a, b, LinkConfig{});
  if (faulted) sim.apply_fault_plan(plan);
  sim.enable_tracing();

  const char* xpes[] = {"/a", "/a/b", "//c", "/d//e", "/a//c"};
  for (std::size_t i = 0; i < plan.subscribers; ++i) {
    int client =
        sim.attach_client(static_cast<int>(rng.index(topology.num_brokers)));
    sim.subscribe(client, parse_xpe(xpes[i % 5]));
    subscribers->push_back(client);
  }
  int publisher =
      sim.attach_client(static_cast<int>(rng.index(topology.num_brokers)));
  sim.run_limited(100000);

  const char* paths[] = {"/a/b", "/a/b/c", "/d/x/e", "/q", "/a"};
  for (std::size_t i = 0; i < plan.documents; ++i) {
    // Two paths per document: the second matching path at a client is a
    // suppressed duplicate, which the deliver spans must flag.
    sim.publish_paths(
        publisher, {parse_path(paths[i % 5]), parse_path(paths[(i + 1) % 5])},
        200);
  }
  ASSERT_TRUE(sim.run_until_quiescent(1000000).quiesced);
}

void verify_span_counts(const Simulator& sim) {
  const NetworkStats& stats = sim.stats();
  std::size_t broker_spans = 0;
  std::uint64_t broker_bytes = 0;
  std::size_t deliveries = 0;
  std::size_t duplicates = 0;
  std::size_t retransmit_spans = 0;
  for (const Span& span : sim.tracer()->spans()) {
    switch (span.kind) {
      case SpanKind::kBroker:
        ++broker_spans;
        broker_bytes += span.bytes;
        break;
      case SpanKind::kDeliver:
        span.duplicate ? ++duplicates : ++deliveries;
        break;
      default:
        break;
    }
    if (span.retransmit) ++retransmit_spans;
  }
  EXPECT_EQ(broker_spans, stats.total_broker_messages());
  EXPECT_EQ(broker_bytes, stats.total_broker_bytes());
  EXPECT_EQ(deliveries, stats.notifications());
  EXPECT_EQ(duplicates, stats.duplicate_notifications());
  EXPECT_EQ(retransmit_spans, stats.retransmits());
}

void verify_delivery_reconstruction(const Simulator& sim,
                                    const std::vector<int>& subscribers) {
  // Rebuild each client's delivery set purely from the trace...
  std::map<int, std::set<std::uint64_t>> from_trace;
  for (const Span& span : sim.tracer()->spans()) {
    if (span.kind != SpanKind::kDeliver || span.duplicate) continue;
    from_trace[span.client].insert(span.doc_id);
  }
  // ...and hold it against the simulator's own records.
  for (int client : subscribers) {
    EXPECT_EQ(from_trace[client], sim.delivered_docs(client))
        << "client " << client << " trace/simulator delivery mismatch";
  }
  // No deliver span may name a client that is not a subscriber (the
  // publisher gets no deliveries in this workload).
  std::set<int> known(subscribers.begin(), subscribers.end());
  for (const auto& [client, docs] : from_trace) {
    EXPECT_TRUE(known.count(client)) << "stray deliver span, client "
                                     << client;
  }
}

void verify_well_formed(const Simulator& sim) {
  const std::vector<Span>& spans = sim.tracer()->spans();
  std::uint64_t traces = sim.tracer()->trace_count();
  // Record order doubles as causal order: map span id -> index.
  std::map<std::uint64_t, std::size_t> index_of;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& span = spans[i];
    EXPECT_TRUE(index_of.emplace(span.id, i).second)
        << "duplicate span id " << span.id;
    ASSERT_GE(span.trace, 1u);
    ASSERT_LE(span.trace, traces);
    EXPECT_GE(span.end_ms, span.start_ms) << "span " << span.id;
  }
  std::map<std::uint64_t, std::size_t> roots_per_trace;
  for (const Span& span : spans) {
    if (span.parent == 0) {
      ++roots_per_trace[span.trace];
      EXPECT_EQ(span.kind, SpanKind::kInject)
          << "root of trace " << span.trace << " is not an inject span";
      continue;
    }
    auto parent_pos = index_of.find(span.parent);
    ASSERT_NE(parent_pos, index_of.end())
        << "span " << span.id << " has unknown parent " << span.parent;
    const Span& parent = spans[parent_pos->second];
    EXPECT_EQ(parent.trace, span.trace)
        << "span " << span.id << " crosses traces";
    EXPECT_LT(parent_pos->second, index_of[span.id])
        << "span " << span.id << " recorded before its parent";
    EXPECT_GE(span.start_ms, parent.start_ms - 1e-9)
        << "span " << span.id << " starts before its parent";
  }
  // Every trace that has spans has exactly one root.
  std::set<std::uint64_t> seen_traces;
  for (const Span& span : spans) seen_traces.insert(span.trace);
  for (std::uint64_t trace : seen_traces) {
    EXPECT_EQ(roots_per_trace[trace], 1u) << "trace " << trace;
  }
}

TEST_P(TraceOracle, ReconstructsTheRun) {
  FaultPlan plan;
  if (!GetParam().plan.empty()) plan = parse_fault_plan(GetParam().plan);
  Simulator sim(Simulator::Options{0.0});
  std::vector<int> subscribers;
  run_workload(sim, plan, /*faulted=*/!GetParam().plan.empty(), &subscribers);
  ASSERT_NE(sim.tracer(), nullptr);
  ASSERT_FALSE(sim.tracer()->spans().empty());
  verify_span_counts(sim);
  verify_delivery_reconstruction(sim, subscribers);
  verify_well_formed(sim);
}

std::vector<TraceCase> matrix() {
  struct Profile {
    const char* name;
    const char* directives;
  };
  // Fault profiles from benign to hostile; crash cells restart broker 1
  // mid-run (cold + resync handshake, and snapshot restore).
  const Profile profiles[] = {
      {"clean", ""},
      {"drop1", "drop 0.01\n"},
      {"messy", "drop 0.10\ndup 0.05\nreorder 0.10 2.0\n"},
      {"crash_resync", "drop 0.02\ncrash 1 6.0 resync\n"},
      {"crash_snapshot", "dup 0.05\ncrash 1 6.0 snapshot\n"},
  };
  const std::pair<const char*, const char*> topologies[] = {
      {"tree3", "topology tree 3\n"},
      {"chain5", "topology chain 5\n"},
      {"star6", "topology star 6\n"},
  };
  std::vector<TraceCase> cases;
  for (const auto& [topo_name, topo] : topologies) {
    for (const Profile& profile : profiles) {
      for (std::uint64_t seed : {1u, 7u}) {
        TraceCase c;
        c.name = std::string(topo_name) + "_" + profile.name + "_s" +
                 std::to_string(seed);
        c.plan = std::string(topo) + "subscribers 4\ndocuments 12\nseed " +
                 std::to_string(seed) + "\n" + profile.directives;
        cases.push_back(std::move(c));
      }
    }
  }
  // One genuinely clean cell without the reliable transport at all (the
  // direct-delivery code path records link spans too).
  cases.push_back(TraceCase{"tree3_direct", ""});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, TraceOracle, testing::ValuesIn(matrix()),
                         case_name);

}  // namespace
}  // namespace xroute

#endif  // XROUTE_TRACING_ENABLED
