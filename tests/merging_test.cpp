// Unit tests for the merging rules, D_imperfect, and the merge engine
// (paper §4.3).
#include <gtest/gtest.h>

#include "dtd/parser.hpp"
#include "dtd/universe.hpp"
#include "index/merging.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

Xpe X(const char* s) { return parse_xpe(s); }

TEST(MergeRules, OneDifferencePaperExample) {
  // a/*/c/d and a/*/c/e merge into a/*/c/*.
  auto merged = MergeEngine::merge_one_difference({X("a/*/c/d"), X("a/*/c/e")});
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(*merged, X("a/*/c/*"));
}

TEST(MergeRules, OneDifferenceManyCandidates) {
  // "The number of merging candidates in this rule is not limited to 2."
  auto merged = MergeEngine::merge_one_difference(
      {X("/a/b/a"), X("/a/b/b"), X("/a/b/d")});
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(*merged, X("/a/b/*"));
}

TEST(MergeRules, OneDifferenceRejections) {
  // Two differing positions.
  EXPECT_FALSE(MergeEngine::merge_one_difference({X("/a/b"), X("/c/d")}));
  // Different lengths.
  EXPECT_FALSE(MergeEngine::merge_one_difference({X("/a"), X("/a/b")}));
  // Different operators (that's Rule 2's business).
  EXPECT_FALSE(MergeEngine::merge_one_difference({X("/a/b"), X("/a//b")}));
  // A wildcard at the differing position means covering, not merging.
  EXPECT_FALSE(MergeEngine::merge_one_difference({X("/a/*"), X("/a/b")}));
  // Identical expressions.
  EXPECT_FALSE(MergeEngine::merge_one_difference({X("/a/b"), X("/a/b")}));
  // Fewer than two.
  EXPECT_FALSE(MergeEngine::merge_one_difference({X("/a/b")}));
}

TEST(MergeRules, TwoDifferencesPaperExample) {
  // /a/c/*/* and /a//c/*/c merge into /a//c/*/*.
  auto merged = MergeEngine::merge_two_differences(X("/a/c/*/*"), X("/a//c/*/c"));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(*merged, X("/a//c/*/*"));
}

TEST(MergeRules, TwoDifferencesRejections) {
  // Only one difference -> Rule 1's business.
  EXPECT_FALSE(MergeEngine::merge_two_differences(X("/a/b"), X("/a/c")));
  // Three differences.
  EXPECT_FALSE(
      MergeEngine::merge_two_differences(X("/a/b/c/d"), X("/x//b/c/y")));
  // Lengths differ.
  EXPECT_FALSE(MergeEngine::merge_two_differences(X("/a/b"), X("/a//b/c")));
}

TEST(MergeRules, GeneralRulePaperForm) {
  // prefix XPE1 suffix + prefix XPE2 suffix -> prefix // suffix.
  auto merged = MergeEngine::merge_general(X("/a/x/y/d"), X("/a/z/d"), 2);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(*merged, X("/a//d"));
}

TEST(MergeRules, GeneralRuleGuards) {
  // Too little common material under min_common = 3.
  EXPECT_FALSE(MergeEngine::merge_general(X("/a/x/d"), X("/a/z/d"), 3));
  EXPECT_TRUE(MergeEngine::merge_general(X("/a/b/x/d"), X("/a/b/z/d"), 3));
  // No common prefix.
  EXPECT_FALSE(MergeEngine::merge_general(X("/q/x/d"), X("/a/z/d"), 1));
  // No common suffix.
  EXPECT_FALSE(MergeEngine::merge_general(X("/a/x"), X("/a/z"), 1));
  // Equal inputs.
  EXPECT_FALSE(MergeEngine::merge_general(X("/a/b"), X("/a/b"), 1));
}

// ---------- D_imperfect ----------

const char kMergeDtd[] = R"(
<!ELEMENT r (x)+>
<!ELEMENT x (a | b | c | d | e)>
<!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY>
<!ELEMENT d EMPTY><!ELEMENT e EMPTY>
)";

TEST(ImperfectDegree, PaperStyleComputation) {
  // Universe paths: /r/x/{a,b,c,d,e}. Merging /r/x/d and /r/x/e into
  // /r/x/* admits a,b,c as false positives: D = 3/5.
  Dtd dtd = parse_dtd(kMergeDtd);
  PathUniverse universe(dtd);
  ASSERT_EQ(universe.paths().size(), 5u);
  MergeEngine engine(&universe, MergeOptions{});
  double degree =
      engine.imperfect_degree(X("/r/x/*"), {X("/r/x/d"), X("/r/x/e")});
  EXPECT_DOUBLE_EQ(degree, 0.6);
}

TEST(ImperfectDegree, PerfectMergerIsZero) {
  Dtd dtd = parse_dtd(kMergeDtd);
  PathUniverse universe(dtd);
  MergeEngine engine(&universe, MergeOptions{});
  double degree = engine.imperfect_degree(
      X("/r/x/*"),
      {X("/r/x/a"), X("/r/x/b"), X("/r/x/c"), X("/r/x/d"), X("/r/x/e")});
  EXPECT_DOUBLE_EQ(degree, 0.0);
}

// ---------- the engine ----------

TEST(MergeEngineTest, PerfectMergeApplied) {
  Dtd dtd = parse_dtd(kMergeDtd);
  PathUniverse universe(dtd);
  SubscriptionTree tree;
  for (const char* s :
       {"/r/x/a", "/r/x/b", "/r/x/c", "/r/x/d", "/r/x/e"}) {
    tree.insert(X(s), IfaceId{1});
  }
  MergeOptions options;
  options.max_imperfect_degree = 0.0;
  MergeEngine engine(&universe, options);
  MergeReport report = engine.run(tree);
  ASSERT_EQ(report.merges.size(), 1u);
  EXPECT_EQ(report.merges[0].merger, X("/r/x/*"));
  EXPECT_EQ(report.merges[0].originals.size(), 5u);
  EXPECT_DOUBLE_EQ(report.merges[0].d_imperfect, 0.0);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(report.nodes_removed, 4u);
  EXPECT_EQ(tree.validate(), "");
}

TEST(MergeEngineTest, ImperfectMergeGatedByTolerance) {
  Dtd dtd = parse_dtd(kMergeDtd);
  PathUniverse universe(dtd);
  SubscriptionTree tree;
  tree.insert(X("/r/x/d"), IfaceId{1});
  tree.insert(X("/r/x/e"), IfaceId{2});

  {
    MergeOptions strict;  // perfect only
    MergeEngine engine(&universe, strict);
    EXPECT_TRUE(engine.run(tree).merges.empty());
    EXPECT_EQ(tree.size(), 2u);
  }
  {
    MergeOptions loose;
    loose.max_imperfect_degree = 0.7;
    MergeEngine engine(&universe, loose);
    MergeReport report = engine.run(tree);
    ASSERT_EQ(report.merges.size(), 1u);
    EXPECT_NEAR(report.merges[0].d_imperfect, 0.6, 1e-9);
    EXPECT_EQ(tree.size(), 1u);
    EXPECT_EQ(tree.match_hops(parse_path("/r/x/d")), ifaces({1, 2}));
  }
}

TEST(MergeEngineTest, NoUniverseMeansNoMerging) {
  SubscriptionTree tree;
  tree.insert(X("/r/x/d"), IfaceId{1});
  tree.insert(X("/r/x/e"), IfaceId{1});
  MergeEngine engine(nullptr, MergeOptions{});
  EXPECT_TRUE(engine.run(tree).merges.empty());
  EXPECT_EQ(tree.size(), 2u);
}

TEST(MergeEngineTest, MergersCanMergeAgain) {
  // Two merge passes can cascade: {d,e} -> * at one position frees the
  // sibling group for further rules at another position.
  Dtd dtd = parse_dtd(R"(
<!ELEMENT r (x | y)+>
<!ELEMENT x (a | b)>
<!ELEMENT y (a | b)>
<!ELEMENT a EMPTY><!ELEMENT b EMPTY>
)");
  PathUniverse universe(dtd);
  SubscriptionTree tree;
  tree.insert(X("/r/x/a"), IfaceId{1});
  tree.insert(X("/r/x/b"), IfaceId{2});
  tree.insert(X("/r/y/a"), IfaceId{3});
  tree.insert(X("/r/y/b"), IfaceId{4});
  MergeOptions options;  // perfect merging
  MergeEngine engine(&universe, options);
  MergeReport report = engine.run(tree);
  // /r/x/* + /r/y/* first, then /r/*/*.
  EXPECT_GE(report.merges.size(), 2u);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.match_hops(parse_path("/r/y/b")),
            ifaces({1, 2, 3, 4}));
  EXPECT_EQ(tree.validate(), "");
}

}  // namespace
}  // namespace xroute
