// Transport tests: event-loop semantics on both poller backends, framed
// connections with watermark backpressure, the Hello handshake's rejection
// paths, per-connection metrics — and the differential acceptance test:
// the same scenario over loopback TCP and over the discrete-event
// simulator must produce identical per-client delivery sets.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "transport/broker_node.hpp"
#include "transport/client.hpp"
#include "transport/connection.hpp"
#include "transport/event_loop.hpp"
#include "transport/loopback.hpp"
#include "wire/codec.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

using transport::Connection;
using transport::EventLoop;
using transport::LoopbackOverlay;
using transport::TransportBroker;
using transport::TransportClient;

// -- Event loop --------------------------------------------------------------

class EventLoopBackends : public ::testing::TestWithParam<bool> {};

TEST_P(EventLoopBackends, PostedTasksRunOnTheLoopThread) {
  EventLoop loop(GetParam());
  std::thread runner([&] { loop.run(); });
  std::promise<std::thread::id> ran_on;
  loop.post([&] { ran_on.set_value(std::this_thread::get_id()); });
  EXPECT_EQ(ran_on.get_future().get(), runner.get_id());
  loop.stop();
  runner.join();
}

TEST_P(EventLoopBackends, TimersFireInDeadlineOrderAndCancel) {
  EventLoop loop(GetParam());
  std::thread runner([&] { loop.run(); });
  std::vector<int> order;  // loop-thread only; read after join
  std::promise<void> done;
  loop.post([&] {
    loop.schedule(60.0, [&] {
      order.push_back(3);
      done.set_value();
    });
    loop.schedule(10.0, [&] { order.push_back(1); });
    std::uint64_t doomed = loop.schedule(20.0, [&] { order.push_back(99); });
    loop.schedule(30.0, [&] { order.push_back(2); });
    loop.cancel_timer(doomed);
  });
  done.get_future().wait();
  loop.stop();
  runner.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// A callback early in a ready batch may close another fd of the same batch
// and accept/open a new one reusing the number; the stale readiness event
// must not be delivered to the new registration.
TEST_P(EventLoopBackends, StaleReadinessIsNotDeliveredToAReusedFd) {
  EventLoop loop(GetParam());
  int first[2], second[2];
  ASSERT_EQ(::pipe(first), 0);
  ASSERT_EQ(::pipe(second), 0);
  ASSERT_EQ(::write(first[1], "x", 1), 1);
  ASSERT_EQ(::write(second[1], "y", 1), 1);

  bool spurious = false;
  int fresh[2] = {-1, -1};
  loop.add_fd(first[0], transport::kReadable, [&](std::uint32_t) {
    char c;
    (void)!::read(first[0], &c, 1);
    loop.remove_fd(second[0]);
    ::close(second[0]);
    // The lowest free descriptor is the one just closed, so the new pipe
    // reuses second[0]'s number while its readiness is still queued.
    ASSERT_EQ(::pipe(fresh), 0);
    loop.add_fd(fresh[0], transport::kReadable,
                [&](std::uint32_t) { spurious = true; });
  });
  loop.add_fd(second[0], transport::kReadable, [&](std::uint32_t) {
    char c;
    (void)!::read(second[0], &c, 1);
  });
  loop.run_once(0);
  EXPECT_EQ(fresh[0], second[0]);  // the scenario actually exercised reuse
  EXPECT_FALSE(spurious);

  loop.remove_fd(first[0]);
  ::close(first[0]);
  ::close(first[1]);
  ::close(second[1]);
  if (fresh[0] >= 0) {
    loop.remove_fd(fresh[0]);
    ::close(fresh[0]);
    ::close(fresh[1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, EventLoopBackends, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Poll" : "Default";
                         });

// -- Connection backpressure -------------------------------------------------

TEST(ConnectionBackpressure, WatermarksEngageAndClear) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds), 0);

  EventLoop loop;
  std::atomic<int> engagements{0};
  std::atomic<int> clears{0};

  Connection::Options opts;
  opts.high_watermark = 64u << 10;
  opts.low_watermark = 8u << 10;
  auto connection = std::make_unique<Connection>(&loop, fds[0], opts);
  connection->set_backpressure_handler([&](bool engaged) {
    (engaged ? engagements : clears).fetch_add(1);
  });
  connection->set_frame_handler([](wire::Decoded&&) {});

  std::thread runner([&] { loop.run(); });
  // Queue ~2 MiB of frames; the socketpair buffer is far smaller, so the
  // send queue must cross the high watermark.
  const std::vector<std::uint8_t> frame =
      wire::encode_frame(Message::sync_state(std::string(8192, 's')));
  const std::size_t kFrames = 256;
  std::promise<void> queued;
  loop.post([&] {
    connection->start();
    for (std::size_t i = 0; i < kFrames; ++i) connection->send(frame);
    queued.set_value();
  });
  queued.get_future().wait();
  EXPECT_GE(engagements.load(), 1);

  // Drain the peer end; the writable path must clear the mark.
  std::size_t total = kFrames * frame.size();
  std::size_t drained = 0;
  std::vector<char> sink(64 * 1024);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (drained < total && std::chrono::steady_clock::now() < deadline) {
    ssize_t n = ::read(fds[1], sink.data(), sink.size());
    if (n > 0) {
      drained += static_cast<std::size_t>(n);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(drained, total);
  while (clears.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(clears.load(), 1);
  EXPECT_GE(connection->stats().backpressure_events.load(), 1u);

  loop.post([&] { connection->close("test done"); });
  loop.stop();
  runner.join();
  connection.reset();
  ::close(fds[1]);
}

// -- Handshake ---------------------------------------------------------------

/// Dials `port`, writes `bytes`, and reports whether the broker hung up
/// within the timeout (the expected reaction to every handshake violation).
bool broker_hangs_up_after(std::uint16_t port,
                           const std::vector<std::uint8_t>& bytes) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  timeval timeout{5, 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  if (!bytes.empty()) {
    (void)!::write(fd, bytes.data(), bytes.size());
  }
  // Swallow the broker's own Hello, then expect EOF.
  char buffer[4096];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n == 0) {
      ::close(fd);
      return true;  // orderly hangup
    }
    if (n < 0) {
      ::close(fd);
      return false;  // timeout: the broker kept the connection
    }
  }
}

TEST(TransportHandshake, GarbageAndNonHelloFirstFramesAreRejected) {
  TransportBroker::Options opts;
  opts.id = 0;
  opts.config.use_advertisements = false;
  TransportBroker broker(std::move(opts));
  broker.start();

  EXPECT_TRUE(broker_hangs_up_after(broker.port(),
                                    {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01}));
  // A perfectly valid *session* frame is still a handshake violation when
  // it arrives before Hello.
  EXPECT_TRUE(broker_hangs_up_after(
      broker.port(), wire::encode_frame(Message::subscribe(parse_xpe("/a")))));
  EXPECT_EQ(broker.client_peers(), 0u);
  EXPECT_EQ(broker.broker_peers(), 0u);
  broker.stop();
}

TEST(TransportHandshake, ClientConnectAndDisconnectTracksPeerCounts) {
  TransportBroker::Options opts;
  opts.config.use_advertisements = false;
  TransportBroker broker(std::move(opts));
  broker.start();
  {
    TransportClient::Options copts;
    copts.id = 7;
    TransportClient client{std::move(copts)};
    client.start("127.0.0.1", broker.port());
    ASSERT_TRUE(client.wait_connected());
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (broker.client_peers() != 1 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(broker.client_peers(), 1u);
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (broker.client_peers() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(broker.client_peers(), 0u);
  broker.stop();
}

// A dialed link that drops resumes its retry schedule: a client outlives
// its broker's restart and reconnects without outside help.
TEST(TransportHandshake, DialedConnectionRedialsAfterBrokerRestart) {
  std::uint16_t port = 0;
  TransportClient::Options copts;
  copts.id = 9;
  TransportClient client{std::move(copts)};
  {
    TransportBroker::Options opts;
    opts.config.use_advertisements = false;
    TransportBroker broker(std::move(opts));
    broker.start();
    port = broker.port();
    client.start("127.0.0.1", port);
    ASSERT_TRUE(client.wait_connected());
    broker.stop();
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (client.connected() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_FALSE(client.connected());

  TransportBroker::Options opts;
  opts.config.use_advertisements = false;
  opts.listen_port = port;
  TransportBroker broker(std::move(opts));
  broker.start();
  EXPECT_TRUE(client.wait_connected(10000));
  broker.stop();
}

// -- Backpressure across the broker ------------------------------------------

// A peer that engages backpressure and then dies must release its share of
// the global ingress pause — otherwise the whole node stays read-paused
// forever (the high-severity leak this guards against).
TEST(TransportBackpressure, SlowPeerDisconnectReleasesIngressPause) {
  TransportBroker::Options opts;
  opts.config.use_advertisements = false;
  opts.connection.high_watermark = 1;  // any unflushed egress byte engages
  opts.connection.low_watermark = 0;
  TransportBroker broker(std::move(opts));
  broker.start();

  // A raw "subscriber" with a tiny receive buffer that never reads: the
  // broker's egress to it backs up into its userspace queue.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 2048;
  setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(broker.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  wire::Hello hello;
  hello.kind = wire::Hello::PeerKind::kClient;
  hello.peer_id = 55;
  std::vector<std::uint8_t> handshake = wire::encode_hello(hello);
  std::vector<std::uint8_t> subscribe =
      wire::encode_frame(Message::subscribe(parse_xpe("/flood")));
  handshake.insert(handshake.end(), subscribe.begin(), subscribe.end());
  ASSERT_EQ(::write(fd, handshake.data(), handshake.size()),
            static_cast<ssize_t>(handshake.size()));
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (broker.client_peers() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(broker.client_peers(), 1u);

  // Flood publications at the stalled subscriber until backpressure
  // engages (its kernel buffers fill, then the broker's queue grows).
  TransportClient publisher{TransportClient::Options{}};
  publisher.start("127.0.0.1", broker.port());
  ASSERT_TRUE(publisher.wait_connected());
  std::string deep = "/flood";
  for (int i = 0; i < 100; ++i) deep += "/aaaaaaaaaa";
  const Path flood_path = parse_path(deep);
  std::uint64_t doc_id = 1;
  while (broker.backpressure_engagements() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 50; ++i) {
      PublishMsg pub;
      pub.path = flood_path;
      pub.doc_id = doc_id++;
      publisher.send(Message{pub});
    }
    publisher.sync();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(broker.backpressure_engagements(), 1u);

  // Kill the slow peer. The broker must notice despite the global read
  // pause, release the pause, and serve fresh traffic end to end.
  ::close(fd);
  while (broker.client_peers() > 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(broker.client_peers(), 1u);  // only the publisher remains

  TransportClient subscriber{TransportClient::Options{}};
  subscriber.start("127.0.0.1", broker.port());
  ASSERT_TRUE(subscriber.wait_connected());
  subscriber.send(Message::subscribe(parse_xpe("/fresh")));
  // Republish until delivered: the subscribe and the publication race
  // through the broker, and the broker's duplicate suppression drops a
  // repeated doc_id — so every attempt must carry a fresh one.
  auto fresh_delivered = [&] {
    std::set<std::uint64_t> docs = subscriber.delivered_docs();
    return !docs.empty() && *docs.rbegin() >= 424242;
  };
  std::uint64_t fresh_id = 424242;
  while (!fresh_delivered() &&
         std::chrono::steady_clock::now() < deadline) {
    PublishMsg pub;
    pub.path = parse_path("/fresh/doc");
    pub.doc_id = fresh_id++;
    publisher.send(Message{pub});
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(fresh_delivered())
      << "broker never resumed reads after the backpressured peer died";

  subscriber.stop();
  publisher.stop();
  broker.stop();
}

// -- End-to-end overlays -----------------------------------------------------

TEST(TransportOverlay, PollBackendDeliversAcrossTwoBrokers) {
  LoopbackOverlay::Options opts;
  opts.config.use_advertisements = false;
  opts.force_poll = true;
  LoopbackOverlay overlay(chain(2), opts);
  ASSERT_TRUE(overlay.start());

  TransportClient& subscriber = overlay.attach_client(1, 100);
  subscriber.send(Message::subscribe(parse_xpe("/x")));
  ASSERT_TRUE(overlay.wait_quiescent());

  TransportClient& publisher = overlay.attach_client(0, 101);
  PublishMsg pub;
  pub.path = parse_path("/x/y");
  pub.doc_id = 1;
  publisher.send(Message{pub});
  ASSERT_TRUE(overlay.wait_quiescent());

  EXPECT_EQ(subscriber.delivered_docs(), std::set<std::uint64_t>{1});
  EXPECT_EQ(subscriber.duplicate_publications(), 0u);
}

TEST(TransportOverlay, PerConnectionMetricsSeriesAppear) {
  LoopbackOverlay::Options opts;
  opts.config.use_advertisements = false;
  LoopbackOverlay overlay(chain(2), opts);
  ASSERT_TRUE(overlay.start());
  TransportClient& subscriber = overlay.attach_client(1, 100);
  subscriber.send(Message::subscribe(parse_xpe("/x")));
  ASSERT_TRUE(overlay.wait_quiescent());

  std::string metrics = overlay.broker(1).metrics_json();
  EXPECT_NE(metrics.find("transport.frames"), std::string::npos);
  EXPECT_NE(metrics.find("transport.bytes"), std::string::npos);
  EXPECT_NE(metrics.find("client-100"), std::string::npos);
  // Broker 1's subscription flood reaches broker 0 over the overlay link.
  EXPECT_NE(overlay.broker(0).metrics_json().find("broker-1"),
            std::string::npos);
}

// The differential acceptance test: ISSUE scenario over loopback TCP vs
// the discrete-event simulator — identical per-client delivery sets.
// `match_threads` configures the TCP brokers only: the simulator reference
// is always sequential, so the threaded overlay is held to the sequential
// delivery contract.
void run_tcp_vs_simulator_differential(std::size_t match_threads) {
  const char* kXpes[] = {"/a", "/a/b", "//c", "/d//e", "/a//c"};
  const char* kPaths[] = {"/a/b", "/a/b/c", "/d/x/e", "/q", "/a"};
  const int kSubscriberBroker[] = {1, 3, 5, 6, 2};
  const int kPublisherBroker = 0;
  const Topology topology = complete_binary_tree(3);  // 7 brokers
  Broker::Config config;
  config.use_advertisements = false;

  // -- Reference run: discrete-event simulator.
  Simulator sim(Simulator::Options{0.0});
  for (std::size_t i = 0; i < topology.num_brokers; ++i) sim.add_broker(config);
  for (auto [a, b] : topology.edges) sim.connect(a, b, LinkConfig{});
  std::vector<int> sim_clients;
  for (std::size_t i = 0; i < 5; ++i) {
    int client = sim.attach_client(kSubscriberBroker[i]);
    sim.subscribe(client, parse_xpe(kXpes[i]));
    sim_clients.push_back(client);
  }
  int sim_publisher = sim.attach_client(kPublisherBroker);
  sim.run_limited(100000);
  std::vector<std::uint64_t> doc_ids;
  for (const char* path : kPaths) {
    doc_ids.push_back(sim.publish_paths(sim_publisher, {parse_path(path)}, 200));
  }
  sim.run_until_quiescent(1000000);
  std::vector<std::set<std::uint64_t>> expected;
  for (int client : sim_clients) {
    expected.push_back(sim.delivered_docs(client));
  }
  // The scenario must be non-trivial in both directions.
  ASSERT_TRUE(std::any_of(expected.begin(), expected.end(),
                          [](const auto& s) { return !s.empty(); }));
  ASSERT_TRUE(std::any_of(expected.begin(), expected.end(),
                          [&](const auto& s) { return s.size() < doc_ids.size(); }));

  // -- Same scenario over real sockets.
  LoopbackOverlay::Options opts;
  opts.config = config;
  opts.config.match_threads = match_threads;
  LoopbackOverlay overlay(topology, opts);
  ASSERT_TRUE(overlay.start());
  std::vector<TransportClient*> tcp_clients;
  for (std::size_t i = 0; i < 5; ++i) {
    TransportClient& client =
        overlay.attach_client(kSubscriberBroker[i], 100 + static_cast<int>(i));
    client.send(Message::subscribe(parse_xpe(kXpes[i])));
    tcp_clients.push_back(&client);
  }
  ASSERT_TRUE(overlay.wait_quiescent());

  TransportClient& publisher = overlay.attach_client(kPublisherBroker, 199);
  for (std::size_t i = 0; i < doc_ids.size(); ++i) {
    PublishMsg pub;
    pub.path = parse_path(kPaths[i]);
    pub.doc_id = doc_ids[i];
    pub.doc_bytes = 200;
    publisher.send(Message{pub});
  }
  ASSERT_TRUE(overlay.wait_quiescent());

  for (std::size_t i = 0; i < tcp_clients.size(); ++i) {
    EXPECT_EQ(tcp_clients[i]->delivered_docs(), expected[i])
        << "subscriber " << i << " (" << kXpes[i] << ") delivery set differs";
    EXPECT_EQ(tcp_clients[i]->duplicate_publications(), 0u)
        << "subscriber " << i << " received duplicates";
  }

  if (match_threads > 1) {
    // The threaded brokers really ran the parallel engine, and its
    // metrics surface through the registry export.
    std::string metrics = overlay.broker(kPublisherBroker).metrics_json();
    EXPECT_NE(metrics.find("match.epochs"), std::string::npos);
    EXPECT_NE(metrics.find("match.worker_tasks"), std::string::npos);
  }
}

TEST(TransportDifferential, TcpOverlayMatchesSimulatorDeliverySets) {
  run_tcp_vs_simulator_differential(/*match_threads=*/1);
}

// PR 5: the same differential with every TCP broker matching on a 4-worker
// pool behind its event loop. Delivery sets must not move.
TEST(TransportDifferential, ThreadedTcpOverlayMatchesSimulatorDeliverySets) {
  run_tcp_vs_simulator_differential(/*match_threads=*/4);
}

}  // namespace
}  // namespace xroute
