// Unit tests for the advertisement model, recursive matching (paper §3.3,
// Fig. 3) and the exact automaton matcher.
#include <gtest/gtest.h>

#include "adv/advertisement.hpp"
#include "match/adv_automaton.hpp"
#include "match/rec_adv_match.hpp"
#include "util/error.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

TEST(Advertisement, NonRecursiveBasics) {
  Advertisement a = Advertisement::from_elements({"a", "*", "c"});
  EXPECT_TRUE(a.non_recursive());
  EXPECT_EQ(a.shape(), Advertisement::Shape::kNonRecursive);
  EXPECT_EQ(a.min_length(), 3u);
  EXPECT_EQ(a.to_string(), "/a/*/c");
  EXPECT_EQ(a.flat_elements(), (std::vector<std::string>{"a", "*", "c"}));
}

TEST(Advertisement, ParseRoundTrip) {
  for (const char* text :
       {"/a/b/c", "/a/*/c(/e/d)+/*/c/e", "(/a/b)+/c", "/a(/b)+(/c)+/d",
        "/a(/b(/c)+/d)+/e", "/x(/*)+"}) {
    EXPECT_EQ(parse_advertisement(text).to_string(), text) << text;
  }
}

TEST(Advertisement, ParseErrors) {
  EXPECT_THROW(parse_advertisement(""), ParseError);
  EXPECT_THROW(parse_advertisement("a/b"), ParseError);
  EXPECT_THROW(parse_advertisement("/a/"), ParseError);
  EXPECT_THROW(parse_advertisement("/a(/b)"), ParseError);   // missing '+'
  EXPECT_THROW(parse_advertisement("/a(/b"), ParseError);    // unclosed
  EXPECT_THROW(parse_advertisement("/a()+/b"), ParseError);  // empty group
  EXPECT_THROW(parse_advertisement("/a)/b"), ParseError);
}

TEST(Advertisement, Shapes) {
  EXPECT_EQ(parse_advertisement("/a/b").shape(),
            Advertisement::Shape::kNonRecursive);
  EXPECT_EQ(parse_advertisement("/a(/b/c)+/d").shape(),
            Advertisement::Shape::kSimpleRecursive);
  EXPECT_EQ(parse_advertisement("/a(/b)+/c(/d)+/e").shape(),
            Advertisement::Shape::kSeriesRecursive);
  EXPECT_EQ(parse_advertisement("/a(/b(/c)+/d)+/e").shape(),
            Advertisement::Shape::kEmbeddedRecursive);
  EXPECT_EQ(parse_advertisement("/a(/b(/c(/x)+)+/d)+/e").shape(),
            Advertisement::Shape::kGeneral);
}

TEST(Advertisement, MinLength) {
  EXPECT_EQ(parse_advertisement("/a(/b/c)+/d").min_length(), 4u);
  EXPECT_EQ(parse_advertisement("/a(/b(/c)+/d)+/e").min_length(), 5u);
}

TEST(Advertisement, Expansions) {
  Advertisement a = parse_advertisement("/a(/b)+/c");
  auto exps = a.expansions(5);
  // a b c; a b b c; a b b b c.
  ASSERT_EQ(exps.size(), 3u);
  EXPECT_EQ(exps[0], (std::vector<std::string>{"a", "b", "c"}));
  for (const auto& e : exps) {
    EXPECT_LE(e.size(), 5u);
    EXPECT_EQ(e.front(), "a");
    EXPECT_EQ(e.back(), "c");
  }
}

TEST(Advertisement, NestedExpansions) {
  Advertisement a = parse_advertisement("(/a(/b)+)+");
  auto exps = a.expansions(4);
  // a b; a b b; a b b b; a b a b; a b b a b(5 too long)... enumerate:
  // [ab], [abb], [abbb], [abab].
  ASSERT_EQ(exps.size(), 4u);
}

// ---------- Fig. 3: AbsExprAndSimRecAdv ----------

TEST(SimRecAdv, PaperExample) {
  // a = /a/*/c(/e/d)+/*/c/e, s = /*/a/c/*/d/e/d/* -> 1 (two repetitions).
  std::vector<std::string> a1{"a", "*", "c"};
  std::vector<std::string> a2{"e", "d"};
  std::vector<std::string> a3{"*", "c", "e"};
  EXPECT_TRUE(
      abs_expr_and_sim_rec_adv(a1, a2, a3, parse_xpe("/*/a/c/*/d/e/d/*")));
}

TEST(SimRecAdv, ShortSubscriptionUsesPrefix) {
  std::vector<std::string> a1{"a"};
  std::vector<std::string> a2{"b"};
  std::vector<std::string> a3{"c"};
  EXPECT_TRUE(abs_expr_and_sim_rec_adv(a1, a2, a3, parse_xpe("/a")));
  EXPECT_TRUE(abs_expr_and_sim_rec_adv(a1, a2, a3, parse_xpe("/a/b")));
  EXPECT_TRUE(abs_expr_and_sim_rec_adv(a1, a2, a3, parse_xpe("/a/b/c")));
  EXPECT_TRUE(abs_expr_and_sim_rec_adv(a1, a2, a3, parse_xpe("/a/b/b/c")));
  EXPECT_FALSE(abs_expr_and_sim_rec_adv(a1, a2, a3, parse_xpe("/a/c")));
  EXPECT_FALSE(abs_expr_and_sim_rec_adv(a1, a2, a3, parse_xpe("/b")));
}

TEST(SimRecAdv, SuffixAlignment) {
  // a = (/x)+/y: subscription /x/x/y matches with r=2.
  EXPECT_TRUE(abs_expr_and_sim_rec_adv({}, {"x"}, {"y"}, parse_xpe("/x/x/y")));
  EXPECT_TRUE(abs_expr_and_sim_rec_adv({}, {"x"}, {"y"}, parse_xpe("/x/y")));
  EXPECT_FALSE(abs_expr_and_sim_rec_adv({}, {"x"}, {"y"}, parse_xpe("/y")));
  EXPECT_FALSE(
      abs_expr_and_sim_rec_adv({}, {"x"}, {"y"}, parse_xpe("/x/y/x")));
}

// ---------- the exact automaton ----------

TEST(Automaton, AcceptsPathNonRecursive) {
  AdvAutomaton m(parse_advertisement("/a/*/c"));
  EXPECT_TRUE(m.accepts_path(parse_path("/a/b/c")));
  EXPECT_TRUE(m.accepts_path(parse_path("/a/z/c")));
  EXPECT_FALSE(m.accepts_path(parse_path("/a/b")));      // exact length
  EXPECT_FALSE(m.accepts_path(parse_path("/a/b/c/d")));  // exact length
  EXPECT_FALSE(m.accepts_path(parse_path("/a/b/d")));
}

TEST(Automaton, AcceptsPathRecursive) {
  AdvAutomaton m(parse_advertisement("/a(/b/c)+/d"));
  EXPECT_TRUE(m.accepts_path(parse_path("/a/b/c/d")));
  EXPECT_TRUE(m.accepts_path(parse_path("/a/b/c/b/c/d")));
  EXPECT_FALSE(m.accepts_path(parse_path("/a/d")));        // group >= 1
  EXPECT_FALSE(m.accepts_path(parse_path("/a/b/c/b/d")));  // partial repeat
}

TEST(Automaton, AcceptsPathEmbedded) {
  AdvAutomaton m(parse_advertisement("/a(/b(/c)+)+/d"));
  EXPECT_TRUE(m.accepts_path(parse_path("/a/b/c/d")));
  EXPECT_TRUE(m.accepts_path(parse_path("/a/b/c/c/d")));
  EXPECT_TRUE(m.accepts_path(parse_path("/a/b/c/b/c/c/d")));
  EXPECT_FALSE(m.accepts_path(parse_path("/a/b/b/c/d")));
}

TEST(Automaton, OverlapSimple) {
  AdvAutomaton m(parse_advertisement("/a(/b/c)+/d"));
  EXPECT_TRUE(m.overlaps(parse_xpe("/a/b")));
  EXPECT_TRUE(m.overlaps(parse_xpe("/a//d")));
  EXPECT_TRUE(m.overlaps(parse_xpe("b/c/d")));
  EXPECT_TRUE(m.overlaps(parse_xpe("//c/b")));   // across a repetition
  EXPECT_FALSE(m.overlaps(parse_xpe("/b")));
  EXPECT_FALSE(m.overlaps(parse_xpe("/a/c")));
  EXPECT_FALSE(m.overlaps(parse_xpe("//d/c")));
}

TEST(Automaton, OverlapRespectsMinimumLength) {
  AdvAutomaton m(parse_advertisement("/a/b"));
  // Publications have exactly 2 elements; a longer XPE cannot match.
  EXPECT_FALSE(m.overlaps(parse_xpe("/a/b/c")));
  EXPECT_FALSE(m.overlaps(parse_xpe("//a/b/c")));
  EXPECT_TRUE(m.overlaps(parse_xpe("/a/b")));
  // But a recursive advertisement can pump length.
  AdvAutomaton r(parse_advertisement("/a(/b)+"));
  EXPECT_TRUE(r.overlaps(parse_xpe("/a/b/b/b/b")));
}

TEST(Automaton, DispatcherMatchesLiteralAlgorithms) {
  Advertisement a = parse_advertisement("/a/*/c(/e/d)+/*/c/e");
  EXPECT_TRUE(adv_overlaps(a, parse_xpe("/*/a/c/*/d/e/d/*")));
  EXPECT_TRUE(adv_overlaps(a, parse_xpe("/a/c")));  // '*' overlaps 'c'
  EXPECT_FALSE(adv_overlaps(a, parse_xpe("/a/c/a")));
  EXPECT_FALSE(adv_overlaps(a, parse_xpe("/b")));
  Advertisement flat = parse_advertisement("/x/y");
  EXPECT_TRUE(adv_overlaps(flat, parse_xpe("y")));
}

TEST(RecAdvGeneral, ExpansionEnumerationAgrees) {
  Advertisement a = parse_advertisement("/a(/b)+/c(/d)+/e");
  EXPECT_TRUE(abs_expr_and_rec_adv(a, parse_xpe("/a/b/b/c/d/e")));
  EXPECT_TRUE(abs_expr_and_rec_adv(a, parse_xpe("/a/b/c")));
  EXPECT_FALSE(abs_expr_and_rec_adv(a, parse_xpe("/a/c")));
  AdvAutomaton m(a);
  for (const char* q :
       {"/a/b/b/c/d/e", "/a/b/c", "/a/c", "/a/b/c/d/d/e", "/a/b/b/b/b/c"}) {
    EXPECT_EQ(abs_expr_and_rec_adv(a, parse_xpe(q)), m.overlaps(parse_xpe(q)))
        << q;
  }
}

}  // namespace
}  // namespace xroute
