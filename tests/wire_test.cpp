// Wire codec tests: exhaustive encode→decode round-trip equality over the
// full Message variant, property round-trips over generated workloads, the
// strict-decoder error paths (truncation at every byte boundary, garbage
// prefixes, hostile lengths), stream reassembly, and the snapshot /
// SyncState payloads riding through the codec.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adv/advertisement.hpp"
#include "adv/derive.hpp"
#include "dtd/universe.hpp"
#include "router/broker.hpp"
#include "router/message.hpp"
#include "router/snapshot.hpp"
#include "util/error.hpp"
#include "wire/codec.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/xpath_gen.hpp"
#include "xml/parser.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

using wire::DecodeStatus;
using wire::FrameKind;

/// Encode → decode → payload equality, and the frame must consume exactly.
void expect_roundtrip(const Message& msg) {
  std::vector<std::uint8_t> frame = wire::encode_frame(msg);
  wire::Decoded decoded = wire::decode_frame(frame);
  ASSERT_EQ(decoded.status, DecodeStatus::kOk)
      << "frame of type " << to_string(msg.type()) << ": "
      << to_string(decoded.status);
  EXPECT_EQ(decoded.consumed, frame.size());
  ASSERT_TRUE(decoded.is_message());
  EXPECT_EQ(decoded.message.type(), msg.type());
  EXPECT_EQ(decoded.message.payload, msg.payload)
      << "payload mismatch for " << to_string(msg.type());
  // Bit-exactness: re-encoding the decoded message reproduces the frame.
  EXPECT_EQ(wire::encode_frame(decoded.message), frame);
}

TEST(WireCodec, RoundTripsEveryMessageType) {
  expect_roundtrip(Message::advertise(parse_advertisement("/a/b/c"), 3));
  expect_roundtrip(Message::advertise(parse_advertisement("/a/*/c"), -1));
  expect_roundtrip(
      Message::advertise(parse_advertisement("/a(/b/c)+/d"), 120));
  expect_roundtrip(Message::subscribe(parse_xpe("/a/b")));
  expect_roundtrip(Message::subscribe(parse_xpe("//c")));
  expect_roundtrip(Message::subscribe(parse_xpe("/a//b/*")));
  expect_roundtrip(Message::subscribe(parse_xpe("a/b/c")));  // relative
  expect_roundtrip(Message::unsubscribe(parse_xpe("/d//e")));
  expect_roundtrip(Message::unadvertise(parse_advertisement("/x/y"), 9));
  expect_roundtrip(Message::sync_request());
  expect_roundtrip(Message::sync_state("xroute-link-sync 1\nend\n"));
  expect_roundtrip(Message::sync_state(""));

  PublishMsg pub;
  pub.path = parse_path("/a/b/c");
  pub.doc_id = 0xFFFF'FFFF'FFFFull;
  pub.path_id = 7;
  pub.doc_bytes = 12345;
  pub.paths_in_doc = 42;
  pub.publish_time = 1234.5625;
  expect_roundtrip(Message{pub});
}

TEST(WireCodec, RoundTripsPredicateXpes) {
  const char* xpes[] = {
      "/a/b[@id='7']",
      "/a//c[text()='x y']",
      "//b[@lang='en']/c",
  };
  for (const char* text : xpes) {
    expect_roundtrip(Message::subscribe(parse_xpe(text)));
    expect_roundtrip(Message::unsubscribe(parse_xpe(text)));
  }
}

TEST(WireCodec, RoundTripsAnnotatedPublicationPaths) {
  XmlDocument doc =
      parse_xml("<a id=\"1\" lang=\"en\"><b>text</b><c><d>x</d></c></a>");
  std::uint64_t doc_id = 1;
  for (const Path& path : extract_paths(doc)) {
    ASSERT_TRUE(path.annotated());
    PublishMsg pub;
    pub.path = path;
    pub.doc_id = doc_id++;
    expect_roundtrip(Message{pub});
  }
}

TEST(WireCodec, RoundTripsHello) {
  wire::Hello hello;
  hello.kind = wire::Hello::PeerKind::kClient;
  hello.peer_id = 40001;
  hello.max_version = wire::kProtocolVersion;
  std::vector<std::uint8_t> frame = wire::encode_hello(hello);
  wire::Decoded decoded = wire::decode_frame(frame);
  ASSERT_EQ(decoded.status, DecodeStatus::kOk);
  ASSERT_EQ(decoded.kind, FrameKind::kHello);
  EXPECT_FALSE(decoded.is_message());
  EXPECT_EQ(decoded.hello, hello);
}

TEST(WireCodec, RoundTripsHelloIncarnation) {
  // The incarnation rides the Hello so peers can reject stale rejoins;
  // zero (a first life) and large restart counts must both survive.
  for (std::uint32_t incarnation : {0u, 1u, 7u, 0xFFFF'FFFFu}) {
    wire::Hello hello;
    hello.kind = wire::Hello::PeerKind::kBroker;
    hello.peer_id = 3;
    hello.max_version = wire::kProtocolVersion;
    hello.incarnation = incarnation;
    wire::Decoded decoded = wire::decode_frame(wire::encode_hello(hello));
    ASSERT_EQ(decoded.status, DecodeStatus::kOk);
    ASSERT_EQ(decoded.kind, FrameKind::kHello);
    EXPECT_EQ(decoded.hello.incarnation, incarnation);
    EXPECT_EQ(decoded.hello, hello);
  }
}

TEST(WireCodec, RoundTripsHeartbeatAndGoodbye) {
  for (std::uint64_t seq : {0ull, 1ull, 300ull, 0xFFFF'FFFF'FFFFull}) {
    std::vector<std::uint8_t> frame = wire::encode_heartbeat(seq);
    wire::Decoded decoded = wire::decode_frame(frame);
    ASSERT_EQ(decoded.status, DecodeStatus::kOk);
    ASSERT_EQ(decoded.kind, FrameKind::kHeartbeat);
    EXPECT_FALSE(decoded.is_message());
    EXPECT_EQ(decoded.heartbeat_seq, seq);
    EXPECT_EQ(decoded.consumed, frame.size());
  }
  std::vector<std::uint8_t> bye = wire::encode_goodbye();
  wire::Decoded decoded = wire::decode_frame(bye);
  ASSERT_EQ(decoded.status, DecodeStatus::kOk);
  ASSERT_EQ(decoded.kind, FrameKind::kGoodbye);
  EXPECT_FALSE(decoded.is_message());
  EXPECT_EQ(decoded.consumed, bye.size());
}

// Property: every message produced from the corpus workload generators
// survives the wire bit-exactly — queries with the paper's W/DO knobs and
// predicates, derived advertisements, and universe paths as publications.
TEST(WireCodec, PropertyRoundTripOverGeneratedWorkloads) {
  for (const char* corpus : {"news", "psd"}) {
    Dtd dtd = corpus_dtd(corpus);

    XpathGenOptions gen;
    gen.count = 150;
    gen.seed = 42;
    gen.predicate_prob = 0.3;
    for (const Xpe& xpe : generate_xpaths(dtd, gen)) {
      expect_roundtrip(Message::subscribe(xpe));
    }

    std::uint64_t doc_id = 1;
    for (const Advertisement& adv : derive_advertisements(dtd).advertisements) {
      expect_roundtrip(Message::advertise(adv, 1));
      expect_roundtrip(Message::unadvertise(adv, 1));
    }
    PathUniverse::Options uopts;
    uopts.max_depth = 6;
    PathUniverse universe(dtd, uopts);
    std::size_t taken = 0;
    for (const Path& path : universe.paths()) {
      if (++taken > 200) break;
      PublishMsg pub;
      pub.path = path;
      pub.doc_id = doc_id++;
      pub.doc_bytes = 200;
      expect_roundtrip(Message{pub});
    }
  }
}

// -- Error paths ------------------------------------------------------------

TEST(WireCodec, TruncationAtEveryBoundaryReportsNeedMore) {
  std::vector<Message> samples;
  samples.push_back(Message::advertise(parse_advertisement("/a(/b/c)+/d"), 2));
  samples.push_back(Message::subscribe(parse_xpe("/a//b[@id='1']/*")));
  PublishMsg pub;
  pub.path = parse_path("/a/b/c");
  pub.doc_id = 99;
  samples.push_back(Message{pub});
  samples.push_back(Message::sync_state("xroute-link-sync 1\nend\n"));

  for (const Message& msg : samples) {
    std::vector<std::uint8_t> frame = wire::encode_frame(msg);
    for (std::size_t len = 0; len < frame.size(); ++len) {
      wire::Decoded decoded = wire::decode_frame(frame.data(), len);
      EXPECT_EQ(decoded.status, DecodeStatus::kNeedMore)
          << "prefix of " << len << "/" << frame.size() << " bytes";
      EXPECT_EQ(decoded.consumed, 0u);
    }
  }
}

TEST(WireCodec, GarbagePrefixFailsFast) {
  std::vector<std::uint8_t> frame =
      wire::encode_frame(Message::subscribe(parse_xpe("/a")));

  std::vector<std::uint8_t> bad_magic = frame;
  bad_magic[0] = 'Z';
  EXPECT_EQ(wire::decode_frame(bad_magic).status, DecodeStatus::kBadMagic);
  // A bad magic byte is detected from the very first byte — no "need more"
  // stall on garbage.
  EXPECT_EQ(wire::decode_frame(bad_magic.data(), 1).status,
            DecodeStatus::kBadMagic);

  std::vector<std::uint8_t> bad_version = frame;
  bad_version[2] = 0x7F;
  EXPECT_EQ(wire::decode_frame(bad_version).status, DecodeStatus::kBadVersion);

  std::vector<std::uint8_t> bad_kind = frame;
  bad_kind[3] = 0x66;
  EXPECT_EQ(wire::decode_frame(bad_kind).status, DecodeStatus::kBadKind);
}

TEST(WireCodec, HostileLengthsCannotDemandAllocation) {
  // Header claiming a payload far beyond kMaxFrameBytes: rejected as
  // oversized from the length varint alone.
  std::vector<std::uint8_t> oversized = {wire::kMagic0, wire::kMagic1,
                                         wire::kProtocolVersion,
                                         0x01,  // kSubscribe
                                         0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  EXPECT_EQ(wire::decode_frame(oversized).status, DecodeStatus::kOversized);

  // A syntactically complete frame whose payload claims 0xFFFF list items
  // with two bytes in hand: the count-vs-remaining check rejects it
  // before any allocation happens.
  std::vector<std::uint8_t> hostile = {wire::kMagic0, wire::kMagic1,
                                       wire::kProtocolVersion,
                                       0x01,        // kSubscribe
                                       0x04,        // payload = 4 bytes
                                       0x00,        // flags: absolute
                                       0xFF, 0xFF,  // step count varint
                                       0x03};
  EXPECT_EQ(wire::decode_frame(hostile).status, DecodeStatus::kBadValue);
}

TEST(WireCodec, TrailingBytesAreReported) {
  std::vector<std::uint8_t> frame =
      wire::encode_frame(Message::sync_request());
  std::size_t exact = frame.size();
  frame.push_back(0xAB);
  wire::Decoded decoded = wire::decode_frame(frame);
  EXPECT_EQ(decoded.status, DecodeStatus::kTrailingBytes);
  EXPECT_EQ(decoded.consumed, exact);
}

TEST(WireFrameDecoder, ReassemblesFramesFedByteByByte) {
  std::vector<Message> messages;
  messages.push_back(Message::subscribe(parse_xpe("/a/b")));
  messages.push_back(Message::advertise(parse_advertisement("/x/y/z"), 1));
  PublishMsg pub;
  pub.path = parse_path("/a/b");
  pub.doc_id = 5;
  messages.push_back(Message{pub});

  std::vector<std::uint8_t> stream;
  for (const Message& msg : messages) {
    std::vector<std::uint8_t> frame = wire::encode_frame(msg);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }

  wire::FrameDecoder decoder;
  std::size_t received = 0;
  for (std::uint8_t byte : stream) {
    decoder.feed(&byte, 1);
    for (;;) {
      wire::Decoded decoded = decoder.next();
      if (decoded.status == DecodeStatus::kNeedMore) break;
      ASSERT_EQ(decoded.status, DecodeStatus::kOk);
      ASSERT_LT(received, messages.size());
      EXPECT_EQ(decoded.message.payload, messages[received].payload);
      ++received;
    }
  }
  EXPECT_EQ(received, messages.size());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(WireFrameDecoder, ErrorsAreSticky) {
  wire::FrameDecoder decoder;
  std::vector<std::uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF};
  decoder.feed(garbage);
  EXPECT_EQ(decoder.next().status, DecodeStatus::kBadMagic);
  // Even a pristine frame cannot resurrect a desynchronised stream.
  decoder.feed(wire::encode_frame(Message::sync_request()));
  EXPECT_EQ(decoder.next().status, DecodeStatus::kBadMagic);
  EXPECT_EQ(decoder.error(), DecodeStatus::kBadMagic);
}

// -- Snapshot / SyncState payloads through the wire -------------------------

/// A broker with state on every relation the snapshot serialises.
Broker populated_broker() {
  Broker::Config config;
  Broker broker(1, config);
  broker.add_neighbor(IfaceId{0});
  broker.add_neighbor(IfaceId{1});
  broker.add_client(IfaceId{2});
  broker.handle(IfaceId{0}, Message::advertise(parse_advertisement("/a/b"), 7));
  broker.handle(IfaceId{0}, Message::advertise(parse_advertisement("/a/b/c"), 7));
  broker.handle(IfaceId{2}, Message::subscribe(parse_xpe("/a/b")));
  broker.handle(IfaceId{1}, Message::subscribe(parse_xpe("/a/b/c")));
  return broker;
}

TEST(WireSnapshot, FullSnapshotRoundTripsThroughSyncState) {
  Broker broker = populated_broker();
  std::string snapshot = snapshot_to_string(broker);

  // Snapshot → SyncStateMsg → wire → SyncStateMsg → restore.
  wire::Decoded decoded =
      wire::decode_frame(wire::encode_frame(Message::sync_state(snapshot)));
  ASSERT_EQ(decoded.status, DecodeStatus::kOk);
  const auto& state = std::get<SyncStateMsg>(decoded.message.payload);
  EXPECT_EQ(state.state, snapshot);

  Broker restored(1, Broker::Config{});
  restored.add_neighbor(IfaceId{0});
  restored.add_neighbor(IfaceId{1});
  restored.add_client(IfaceId{2});
  snapshot_from_string(restored, state.state);
  EXPECT_EQ(snapshot_to_string(restored), snapshot);
  EXPECT_EQ(restored.srt_size(), broker.srt_size());
  EXPECT_EQ(restored.prt_size(), broker.prt_size());
}

TEST(WireSnapshot, LinkStateExportImportRoundTripsThroughWire) {
  Broker broker = populated_broker();
  std::string exported = export_link_state(broker, IfaceId{1});
  ASSERT_NE(exported.find("xroute-link-sync 1"), std::string::npos);

  wire::Decoded decoded =
      wire::decode_frame(wire::encode_frame(Message::sync_state(exported)));
  ASSERT_EQ(decoded.status, DecodeStatus::kOk);
  const auto& state = std::get<SyncStateMsg>(decoded.message.payload);
  EXPECT_EQ(state.state, exported);

  // The restarted neighbour imports the decoded slice and regains routing
  // state for the shared link.
  Broker restarted(2, Broker::Config{});
  restarted.add_neighbor(IfaceId{0});
  import_link_state(restarted, IfaceId{0}, state.state);
  EXPECT_GT(restarted.srt_size() + restarted.prt_size(), 0u);
}

TEST(WireSnapshot, MalformedVersionHeaderIsRejectedAfterDecode) {
  // The wire layer transports the state opaquely; the *snapshot* layer owns
  // the version check and must reject an unknown header after a clean
  // wire round-trip.
  std::string bogus = "xroute-link-sync 99\nend\n";
  wire::Decoded decoded =
      wire::decode_frame(wire::encode_frame(Message::sync_state(bogus)));
  ASSERT_EQ(decoded.status, DecodeStatus::kOk);

  Broker restarted(2, Broker::Config{});
  restarted.add_neighbor(IfaceId{0});
  EXPECT_THROW(
      import_link_state(restarted, IfaceId{0},
                        std::get<SyncStateMsg>(decoded.message.payload).state),
      ParseError);

  Broker blank(3, Broker::Config{});
  EXPECT_THROW(snapshot_from_string(blank, "xroute-broker-snapshot 99\nend\n"),
               ParseError);
}

}  // namespace
}  // namespace xroute
