// Round-trip fuzz: every textual form in the system must survive
// serialise -> parse -> serialise across randomly generated instances.
#include <gtest/gtest.h>

#include "adv/derive.hpp"
#include "oracles.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/dtd_gen.hpp"
#include "workload/xml_gen.hpp"
#include "workload/xpath_gen.hpp"
#include "xml/parser.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

class RoundTripFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripFuzz, XmlDocuments) {
  Rng rng(GetParam());
  for (int round = 0; round < 8; ++round) {
    Dtd dtd = generate_random_dtd(rng);
    for (int d = 0; d < 4; ++d) {
      XmlDocument doc = generate_document(dtd, rng, {});
      std::string once = doc.serialize();
      XmlDocument reparsed = parse_xml(once);
      EXPECT_EQ(reparsed.serialize(), once);
      // Structure identical, not just text.
      EXPECT_EQ(extract_paths(reparsed), extract_paths(doc));
    }
  }
}

TEST_P(RoundTripFuzz, CorpusDocuments) {
  Rng rng(GetParam() + 1);
  for (const char* name : {"news", "psd"}) {
    Dtd dtd = corpus_dtd(name);
    for (int d = 0; d < 5; ++d) {
      XmlGenOptions options;
      options.target_bytes = 2048;
      XmlDocument doc = generate_document(dtd, rng, options);
      std::string once = doc.serialize();
      EXPECT_EQ(parse_xml(once).serialize(), once) << name;
    }
  }
}

TEST_P(RoundTripFuzz, Xpes) {
  Rng rng(GetParam() + 2);
  // Structural XPEs over a small alphabet.
  for (int i = 0; i < 300; ++i) {
    Xpe x = testing::random_xpe(rng, testing::small_alphabet(), 6);
    EXPECT_EQ(parse_xpe(x.to_string()), x) << x.to_string();
    EXPECT_EQ(parse_xpe(x.to_string()).to_string(), x.to_string());
  }
  // DTD-guided XPEs with predicates.
  Dtd dtd = psd_dtd();
  XpathGenOptions options;
  options.count = 200;
  options.seed = GetParam();
  options.predicate_prob = 0.5;
  for (const Xpe& x : generate_xpaths(dtd, options)) {
    EXPECT_EQ(parse_xpe(x.to_string()), x) << x.to_string();
  }
}

TEST_P(RoundTripFuzz, DerivedAdvertisements) {
  Rng rng(GetParam() + 3);
  for (int round = 0; round < 5; ++round) {
    DtdGenOptions gopts;
    gopts.self_recursion_prob = 0.3;
    Dtd dtd = generate_random_dtd(rng, gopts);
    DeriveOptions dopts;
    dopts.max_advertisements = 500;
    dopts.repair = false;
    for (const Advertisement& a :
         derive_advertisements(dtd, dopts).advertisements) {
      EXPECT_EQ(parse_advertisement(a.to_string()), a) << a.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzz, ::testing::Values(71, 72));

}  // namespace
}  // namespace xroute
