// Fuzz tests over randomly generated DTDs: the derivation/generation
// invariants must hold for arbitrary (valid) DTD shapes, not just the
// bundled corpus.
#include <gtest/gtest.h>

#include "adv/derive.hpp"
#include "dtd/graph.hpp"
#include "dtd/universe.hpp"
#include "match/adv_automaton.hpp"
#include "match/pub_match.hpp"
#include "workload/dtd_gen.hpp"
#include "workload/xml_gen.hpp"
#include "workload/xpath_gen.hpp"

namespace xroute {
namespace {

class DtdFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DtdFuzz, GeneratedDtdsAreWellFormed) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    DtdGenOptions options;
    options.elements = 5 + rng.index(25);
    options.self_recursion_prob = rng.uniform() * 0.3;
    options.mutual_recursion_prob = rng.uniform() * 0.15;
    Dtd dtd = generate_random_dtd(rng, options);
    EXPECT_TRUE(dtd.undeclared_references().empty());
    for (const std::string& name : dtd.declaration_order()) {
      EXPECT_NO_THROW({
        std::size_t depth = minimal_depth(dtd, name);
        EXPECT_GE(depth, 1u);
      }) << name;
    }
  }
}

TEST_P(DtdFuzz, DerivationStaysComplete) {
  // Every conforming path (to the repair depth) must match some derived
  // advertisement — including DTDs with mutual cycles, where the coarse
  // fallback plus the repair pass must close the gap.
  Rng rng(GetParam() + 100);
  for (int round = 0; round < 6; ++round) {
    DtdGenOptions options;
    options.elements = 5 + rng.index(15);
    options.self_recursion_prob = 0.25;
    options.mutual_recursion_prob = 0.15;
    Dtd dtd = generate_random_dtd(rng, options);

    DeriveOptions dopts;
    dopts.repair_depth = 8;
    auto derived = derive_advertisements(dtd, dopts);
    ASSERT_FALSE(derived.advertisements.empty());

    std::vector<AdvAutomaton> automata;
    for (const Advertisement& a : derived.advertisements) {
      automata.emplace_back(a);
    }
    PathUniverse::Options uopts;
    uopts.max_depth = 8;
    uopts.max_paths = 5000;
    PathUniverse universe(dtd, uopts);
    for (const Path& p : universe.paths()) {
      bool matched = false;
      for (const AdvAutomaton& m : automata) {
        if (m.accepts_path(p)) {
          matched = true;
          break;
        }
      }
      ASSERT_TRUE(matched) << p.to_string() << " (round " << round << ")";
    }
  }
}

TEST_P(DtdFuzz, GeneratedDocumentsStayInTheAdvertisedLanguage) {
  Rng rng(GetParam() + 200);
  for (int round = 0; round < 5; ++round) {
    DtdGenOptions options;
    options.elements = 6 + rng.index(12);
    options.self_recursion_prob = 0.2;
    Dtd dtd = generate_random_dtd(rng, options);

    DeriveOptions dopts;
    dopts.repair_depth = 14;
    auto derived = derive_advertisements(dtd, dopts);
    std::vector<AdvAutomaton> automata;
    for (const Advertisement& a : derived.advertisements) {
      automata.emplace_back(a);
    }

    XmlGenOptions gopts;
    gopts.max_levels = 8;
    for (int d = 0; d < 5; ++d) {
      XmlDocument doc = generate_document(dtd, rng, gopts);
      for (const Path& p : extract_paths(doc)) {
        if (p.size() > 14) continue;  // beyond the repair horizon
        bool matched = false;
        for (const AdvAutomaton& m : automata) {
          if (m.accepts_path(p)) {
            matched = true;
            break;
          }
        }
        ASSERT_TRUE(matched) << p.to_string();
      }
    }
  }
}

TEST_P(DtdFuzz, GeneratedQueriesSatisfiable) {
  Rng rng(GetParam() + 300);
  for (int round = 0; round < 5; ++round) {
    Dtd dtd = generate_random_dtd(rng);
    PathUniverse::Options uopts;
    uopts.max_depth = 10;
    uopts.max_paths = 20000;
    PathUniverse universe(dtd, uopts);
    if (universe.paths().empty()) continue;

    XpathGenOptions xopts;
    xopts.count = 40;
    xopts.seed = GetParam() + static_cast<std::uint64_t>(round);
    xopts.wildcard_prob = 0.0;
    xopts.descendant_prob = 0.0;
    xopts.relative_prob = 0.0;
    xopts.max_length = 8;
    for (const Xpe& q : generate_xpaths(dtd, xopts)) {
      EXPECT_GT(universe.count_matching(q), 0u) << q.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DtdFuzz, ::testing::Values(41, 42, 43));

}  // namespace
}  // namespace xroute
