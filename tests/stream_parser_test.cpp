// Differential and property tests for the streaming path extractor:
// stream_extract_paths must agree with extract_paths(parse_xml(...)) on
// results AND on which inputs throw, at every depth cap.
#include "xml/stream_parser.hpp"

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "util/arena.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/symbols.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/xml_gen.hpp"
#include "xml/parser.hpp"
#include "xml/paths.hpp"

namespace xroute {
namespace {

std::vector<Path> tree_paths(std::string_view text) {
  return extract_paths(parse_xml(text));
}

void expect_same(const std::string& text) {
  SCOPED_TRACE(text);
  std::vector<Path> tree = tree_paths(text);
  std::vector<Path> stream = stream_extract_paths(text);
  ASSERT_EQ(tree.size(), stream.size());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    EXPECT_EQ(tree[i], stream[i]) << "path " << i;
  }
}

TEST(StreamParser, SingleEmptyElement) { expect_same("<a/>"); }

TEST(StreamParser, EmptyElementsAtEveryLevel) {
  expect_same("<a><b/><c><d/></c></a>");
}

TEST(StreamParser, TextOnlyNodes) {
  expect_same("<a>hello<b>world</b> trailing</a>");
}

TEST(StreamParser, SplitTextAroundChildren) {
  // <a>'s text is "xy": character data before AND after <b/> — the tree
  // walk concatenates them, so the stream must defer emission to doc end.
  expect_same("<a>x<b/>y</a>");
  std::vector<Path> got = stream_extract_paths("<a>x<b/>y</a>");
  ASSERT_EQ(got.size(), 1u);
  ASSERT_TRUE(got[0].annotated());
  EXPECT_EQ(got[0].node_data(0)->text, "xy");
}

TEST(StreamParser, AttributeBearingLeaves) {
  expect_same(R"(<a k="v"><b type='photo' source="wire"/></a>)");
}

TEST(StreamParser, DuplicateAttributeLastWins) {
  expect_same(R"(<a k="one" k="two"><b/></a>)");
}

TEST(StreamParser, EntitiesInTextAndAttributes) {
  expect_same(R"(<a k="x&amp;y&#65;">M &lt;&gt; &quot;&apos; &#x41;</a>)");
}

TEST(StreamParser, NonAsciiCharRefBecomesPlaceholder) {
  expect_same("<a>&#955;</a>");
  std::vector<Path> got = stream_extract_paths("<a>&#955;</a>");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].node_data(0)->text, "?");
}

TEST(StreamParser, CdataSkippedCommentsAndPisIgnored) {
  expect_same(
      "<?xml version='1.0'?><!DOCTYPE a [<!ELEMENT a ANY>]>"
      "<a><!-- note -->pre<![CDATA[<not><parsed>]]>post<?pi data?></a>");
}

TEST(StreamParser, DuplicatePathsCollapseInFirstOccurrenceOrder) {
  expect_same("<a><b/><c/><b/></a>");
  std::vector<Path> got = stream_extract_paths("<a><b/><c/><b/></a>");
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].to_string(), "/a/b");
  EXPECT_EQ(got[1].to_string(), "/a/c");
}

TEST(StreamParser, DuplicatesWithDistinctAnnotationsStayDistinct) {
  // Same element path, different text: not duplicates.
  expect_same("<a><b>1</b><b>2</b></a>");
  EXPECT_EQ(stream_extract_paths("<a><b>1</b><b>2</b></a>").size(), 2u);
}

TEST(StreamParser, DepthCapTruncatesLikeTree) {
  const std::string text = "<a><b><c><d/></c></b><e/></a>";
  for (std::size_t cap : {0u, 1u, 2u, 3u, 4u, 10u}) {
    SCOPED_TRACE(cap);
    std::vector<Path> tree = extract_paths(parse_xml(text), cap);
    std::vector<Path> stream = stream_extract_paths(text, cap);
    EXPECT_EQ(tree, stream);
  }
}

TEST(StreamParser, SymbolsMatchInternedPath) {
  intern_symbol("stream_sym_known");
  StreamPathExtractor ex;
  ex.extract("<stream_sym_known><stream_sym_unknown/></stream_sym_known>");
  ASSERT_EQ(ex.paths().size(), 1u);
  InternedPath ip(ex.paths()[0]);
  auto syms = ex.symbols(0);
  ASSERT_EQ(syms.size(), ip.symbols.size());
  for (std::size_t i = 0; i < syms.size(); ++i) {
    EXPECT_EQ(syms[i], ip.symbols[i]);
  }
  EXPECT_EQ(syms[1], SymbolTable::kNoSymbol);
}

TEST(StreamParser, ExtractorIsReusable) {
  StreamPathExtractor ex;
  ex.extract("<a><b>t</b></a>");
  ASSERT_EQ(ex.paths().size(), 1u);
  EXPECT_EQ(ex.paths()[0].to_string(), "/a/b");
  ex.extract("<x/>");
  ASSERT_EQ(ex.paths().size(), 1u);
  EXPECT_EQ(ex.paths()[0].to_string(), "/x");
  // Stale results fully replaced, including symbol spans.
  EXPECT_EQ(ex.symbols(0).size(), 1u);
}

// --- malformed inputs: both front ends must reject identically ---------

void expect_both_throw(const std::string& text) {
  SCOPED_TRACE(text);
  EXPECT_THROW(tree_paths(text), ParseError);
  EXPECT_THROW(stream_extract_paths(text), ParseError);
}

TEST(StreamParser, MalformedInputsRejected) {
  expect_both_throw("");
  expect_both_throw("   ");
  expect_both_throw("no markup");
  expect_both_throw("<a>");
  expect_both_throw("<a></b>");
  expect_both_throw("<a><b></a></b>");
  expect_both_throw("<a attr></a>");
  expect_both_throw("<a k=v/>");
  expect_both_throw("<a k='v/>");
  expect_both_throw("<a>&nosuch;</a>");
  expect_both_throw("<a>&#xzz;</a>");
  expect_both_throw("<a>&unterminated");
  expect_both_throw("<a/><b/>");
  expect_both_throw("<a/>trailing");
  expect_both_throw("<a><![CDATA[unterminated</a>");
  expect_both_throw("<a><!-- unterminated</a>");
  expect_both_throw("<1bad/>");
}

TEST(StreamParser, DepthLimitBothParsers) {
  // kMaxXmlDepth nested elements parse; one more must throw in both.
  auto nested = [](std::size_t depth) {
    std::string text;
    for (std::size_t i = 0; i < depth; ++i) text += "<d>";
    for (std::size_t i = 0; i < depth; ++i) text += "</d>";
    return text;
  };
  const std::string ok = nested(kMaxXmlDepth);
  EXPECT_EQ(tree_paths(ok).size(), 1u);
  EXPECT_EQ(stream_extract_paths(ok).size(), 1u);
  const std::string deep = nested(kMaxXmlDepth + 1);
  EXPECT_THROW(parse_xml(deep), ParseError);
  EXPECT_THROW(stream_extract_paths(deep), ParseError);
}

// --- property test over generated workloads ----------------------------

TEST(StreamParser, PropertyGeneratedDocumentsAgree) {
  Rng rng(20260809);
  for (const Dtd& dtd : {news_dtd(), psd_dtd()}) {
    for (int round = 0; round < 60; ++round) {
      XmlGenOptions opts;
      opts.max_levels = 1 + rng.index(9);
      XmlDocument doc = generate_document(dtd, rng, opts);
      std::string text = doc.serialize();
      SCOPED_TRACE(text);
      std::vector<Path> tree = tree_paths(text);
      std::vector<Path> stream = stream_extract_paths(text);
      ASSERT_EQ(tree, stream);
      // And under a random depth cap.
      std::size_t cap = rng.index(6);
      ASSERT_EQ(extract_paths(parse_xml(text), cap),
                stream_extract_paths(text, cap));
    }
  }
}

TEST(StreamParser, PropertyHandAssembledEdgeDocuments) {
  // Deterministic generator biased toward the edge shapes the issue calls
  // out: empty elements, text-only nodes, attribute-bearing leaves, split
  // text, repeated siblings.
  std::mt19937_64 rng(7);
  for (int round = 0; round < 300; ++round) {
    std::ostringstream os;
    std::vector<std::string> stack;
    auto name = [&] { return std::string(1, static_cast<char>('a' + rng() % 4)); };
    os << "<root";
    if (rng() % 2) os << " k=\"" << rng() % 10 << "\"";
    os << ">";
    stack.push_back("root");
    int steps = 2 + static_cast<int>(rng() % 12);
    for (int s = 0; s < steps; ++s) {
      switch (rng() % 5) {
        case 0: {  // open child
          if (stack.size() >= 6) break;
          std::string n = name();
          os << "<" << n;
          if (rng() % 3 == 0) os << " a=\"" << rng() % 10 << "\"";
          if (rng() % 4 == 0) {
            os << "/>";
          } else {
            os << ">";
            stack.push_back(n);
          }
          break;
        }
        case 1:  // text
          os << "t" << rng() % 10;
          break;
        case 2:  // entity text
          os << "&amp;";
          break;
        case 3:  // close (keep root open)
          if (stack.size() > 1) {
            os << "</" << stack.back() << ">";
            stack.pop_back();
          }
          break;
        default:  // comment
          os << "<!--c-->";
          break;
      }
    }
    while (!stack.empty()) {
      os << "</" << stack.back() << ">";
      stack.pop_back();
    }
    expect_same(os.str());
  }
}

// --- arena --------------------------------------------------------------

TEST(Arena, AlignedAllocationAndReset) {
  Arena arena;
  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 8);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  std::string_view copied = arena.copy("hello arena");
  EXPECT_EQ(copied, "hello arena");
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // After reset the kept block is reused: same capacity, no growth for a
  // same-sized workload.
  std::size_t reserved = arena.bytes_reserved();
  (void)arena.copy("hello arena");
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, GrowsForOversizedRequests) {
  Arena arena;
  std::string big(3u << 20, 'x');
  std::string_view copied = arena.copy(big);
  EXPECT_EQ(copied.size(), big.size());
  EXPECT_EQ(copied, big);
  arena.reset();
  // The big block is the one kept.
  EXPECT_GE(arena.bytes_reserved(), big.size());
}

}  // namespace
}  // namespace xroute
