// Unit tests for publication matching and non-recursive advertisement
// matching (paper §3.2), including every worked example from the paper.
#include <gtest/gtest.h>

#include "match/adv_match.hpp"
#include "match/pub_match.hpp"
#include "match/rules.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

Path P(const std::string& s) { return parse_path(s); }

TEST(Rules, Overlap) {
  EXPECT_TRUE(elements_overlap("*", "*"));
  EXPECT_TRUE(elements_overlap("*", "t"));
  EXPECT_TRUE(elements_overlap("t", "*"));
  EXPECT_TRUE(elements_overlap("t", "t"));
  EXPECT_FALSE(elements_overlap("t1", "t2"));
}

TEST(Rules, Covering) {
  EXPECT_TRUE(element_covers("*", "anything"));
  EXPECT_TRUE(element_covers("*", "*"));
  EXPECT_TRUE(element_covers("t", "t"));
  EXPECT_FALSE(element_covers("t", "*"));
  EXPECT_FALSE(element_covers("t", "u"));
}

// ---------- publication vs subscription ----------

TEST(PubMatch, AbsoluteSimple) {
  EXPECT_TRUE(matches(P("/a/b/c"), parse_xpe("/a/b/c")));
  EXPECT_TRUE(matches(P("/a/b/c"), parse_xpe("/a/b")));  // prefix semantics
  EXPECT_TRUE(matches(P("/a/b/c"), parse_xpe("/a/*/c")));
  EXPECT_FALSE(matches(P("/a/b/c"), parse_xpe("/a/b/c/d")));  // too long
  EXPECT_FALSE(matches(P("/a/b/c"), parse_xpe("/b")));
  EXPECT_FALSE(matches(P("/a/b/c"), parse_xpe("/a/c")));
}

TEST(PubMatch, Relative) {
  EXPECT_TRUE(matches(P("/a/b/c"), parse_xpe("b/c")));
  EXPECT_TRUE(matches(P("/a/b/c"), parse_xpe("c")));
  EXPECT_TRUE(matches(P("/a/b/c"), parse_xpe("a")));
  EXPECT_FALSE(matches(P("/a/b/c"), parse_xpe("c/b")));
  EXPECT_TRUE(matches(P("/a/b/c"), parse_xpe("*/c")));
}

TEST(PubMatch, Descendant) {
  EXPECT_TRUE(matches(P("/a/b/c/d"), parse_xpe("/a//d")));
  EXPECT_TRUE(matches(P("/a/b/c/d"), parse_xpe("/a//c/d")));
  EXPECT_TRUE(matches(P("/a/b"), parse_xpe("/a//b")));  // '//' gap may be 0
  EXPECT_TRUE(matches(P("/a/b/c/d"), parse_xpe("//b//d")));
  EXPECT_FALSE(matches(P("/a/b/c/d"), parse_xpe("/a//d/c")));
  EXPECT_FALSE(matches(P("/a/b"), parse_xpe("/b//a")));
}

TEST(PubMatch, GreedyBacktrackFree) {
  // Greedy earliest placement must not break later segments.
  EXPECT_TRUE(matches(P("/a/b/a/b/c"), parse_xpe("/a//b/c")));
  EXPECT_TRUE(matches(P("/x/a/x/a/b"), parse_xpe("a/b")));
  EXPECT_TRUE(matches(P("/a/a/a/b"), parse_xpe("/a/a//b")));
}

TEST(PubMatch, WildcardsAndDescendants) {
  EXPECT_TRUE(matches(P("/a/x/y/c"), parse_xpe("/a/*//c")));
  EXPECT_TRUE(matches(P("/a/x/c"), parse_xpe("/a/*//c")));
  EXPECT_FALSE(matches(P("/a/c"), parse_xpe("/a/*//c")));
  EXPECT_TRUE(matches(P("/a"), parse_xpe("*")));
}

// ---------- AbsExprAndAdv ----------

TEST(AbsExprAndAdv, PaperExample) {
  // a = /b/*/*/c/c/d, s = /*/c/*/b/c -> no overlap (position 4: c vs b).
  std::vector<std::string> a{"b", "*", "*", "c", "c", "d"};
  EXPECT_FALSE(abs_expr_and_adv(a, parse_xpe("/*/c/*/b/c")));
  EXPECT_TRUE(abs_expr_and_adv(a, parse_xpe("/*/c/*/c/c")));
  EXPECT_TRUE(abs_expr_and_adv(a, parse_xpe("/b/x/y")));
}

TEST(AbsExprAndAdv, LengthRule) {
  std::vector<std::string> a{"a", "b"};
  // An XPE longer than the advertisement cannot match its publications.
  EXPECT_FALSE(abs_expr_and_adv(a, parse_xpe("/a/b/c")));
  EXPECT_TRUE(abs_expr_and_adv(a, parse_xpe("/a/b")));
  EXPECT_TRUE(abs_expr_and_adv(a, parse_xpe("/a")));
}

TEST(AbsExprAndAdv, WildcardInAdv) {
  std::vector<std::string> a{"*", "*"};
  EXPECT_TRUE(abs_expr_and_adv(a, parse_xpe("/x/y")));
}

// ---------- RelExprAndAdv ----------

TEST(RelExprAndAdv, WindowSearch) {
  std::vector<std::string> a{"a", "b", "c", "d"};
  EXPECT_TRUE(rel_expr_and_adv(a, parse_xpe("b/c")));
  EXPECT_TRUE(rel_expr_and_adv(a, parse_xpe("c/d")));
  EXPECT_FALSE(rel_expr_and_adv(a, parse_xpe("b/d")));
  EXPECT_TRUE(rel_expr_and_adv(a, parse_xpe("*/d")));
  EXPECT_FALSE(rel_expr_and_adv(a, parse_xpe("a/b/c/d/e")));
}

TEST(RelExprAndAdv, NaiveAndKmpAgree) {
  std::vector<std::string> a{"a", "b", "a", "b", "c"};
  for (const char* q : {"a/b/c", "b/a", "b/c", "c/a", "a/a"}) {
    EXPECT_EQ(rel_expr_and_adv(a, parse_xpe(q), SearchStrategy::kNaive),
              rel_expr_and_adv(a, parse_xpe(q), SearchStrategy::kKmpWhenSound))
        << q;
  }
}

TEST(RelExprAndAdv, KmpUnsoundCaseFallsBack) {
  // The counterexample to KMP with text don't-cares: pattern "a/c/b" in
  // text a,*,c,b occurs at offset 1 but a naive KMP scan misses it. The
  // strategy must fall back to the exhaustive scan here.
  std::vector<std::string> a{"a", "*", "c", "b"};
  EXPECT_TRUE(
      rel_expr_and_adv(a, parse_xpe("a/c/b"), SearchStrategy::kKmpWhenSound));
  EXPECT_TRUE(rel_expr_and_adv(a, parse_xpe("a/c/b"), SearchStrategy::kNaive));
}

TEST(KmpContains, Basics) {
  std::vector<std::string> text{"a", "b", "a", "a", "b"};
  EXPECT_TRUE(kmp_contains(text, {"a", "a", "b"}));
  EXPECT_TRUE(kmp_contains(text, {"a", "b", "a"}));
  EXPECT_FALSE(kmp_contains(text, {"b", "b"}));
  EXPECT_TRUE(kmp_contains(text, {}));
  EXPECT_FALSE(kmp_contains({}, {"a"}));
}

// ---------- DesExprAndAdv ----------

TEST(DesExprAndAdv, PaperExample) {
  // a = /a/*/e/*/d/*/c/b, s = */a//d/*/c//b -> 1.
  std::vector<std::string> a{"a", "*", "e", "*", "d", "*", "c", "b"};
  EXPECT_TRUE(des_expr_and_adv(a, parse_xpe("*/a//d/*/c//b")));
}

TEST(DesExprAndAdv, OrderingMatters) {
  std::vector<std::string> a{"a", "b", "c"};
  EXPECT_TRUE(des_expr_and_adv(a, parse_xpe("/a//c")));
  EXPECT_FALSE(des_expr_and_adv(a, parse_xpe("/c//a")));
  EXPECT_FALSE(des_expr_and_adv(a, parse_xpe("b//a")));
  EXPECT_TRUE(des_expr_and_adv(a, parse_xpe("a//c")));
}

TEST(DesExprAndAdv, AnchoredFirstSegment) {
  std::vector<std::string> a{"a", "b", "c"};
  EXPECT_FALSE(des_expr_and_adv(a, parse_xpe("/b//c")));
  EXPECT_TRUE(des_expr_and_adv(a, parse_xpe("/a/b//c")));
  EXPECT_FALSE(des_expr_and_adv(a, parse_xpe("/a/c//b")));
}

TEST(NonRecDispatcher, RoutesAllCases) {
  std::vector<std::string> a{"a", "b", "c", "d"};
  EXPECT_TRUE(nonrec_adv_overlaps(a, parse_xpe("/a/b")));       // absolute
  EXPECT_TRUE(nonrec_adv_overlaps(a, parse_xpe("b/c")));        // relative
  EXPECT_TRUE(nonrec_adv_overlaps(a, parse_xpe("/a//d")));      // descendant
  EXPECT_TRUE(nonrec_adv_overlaps(a, parse_xpe("//b/c")));      // desc-led
  EXPECT_FALSE(nonrec_adv_overlaps(a, parse_xpe("/b")));
}

}  // namespace
}  // namespace xroute
