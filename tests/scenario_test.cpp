// Scenario subsystem tests: the DSL parser's grammar and validation, the
// deterministic workload synthesis (schedules and Zipf skew), and one
// small end-to-end chaos run — a kill/restart cycle over real sockets
// asserting the runner's oracle holds.
#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "scenario/workload.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace xroute {
namespace {

using scenario::EventKind;
using scenario::Scenario;
using scenario::ScheduledDoc;
using scenario::ZipfSampler;
using scenario::build_schedule;
using scenario::parse_scenario;

// -- Parser ------------------------------------------------------------------

TEST(ScenarioParse, FullGrammarSample) {
  Scenario s = parse_scenario(R"(# day-in-the-life
name storm
seed 7
topology star 5
option use_covering false
subscribers 6
xpe /a/b
xpe //c
path /a/b
path /a/b/c
zipf 1.2
heartbeat 40 120 300
warmup 150
settle 250
at 0 rate 80 until 2000
at 100 publish 25
at 500 kill 3
at 900 restart 3
at 1200 leave 1
at 1500 join 7 0,2
at 1800 diurnal 60 800 until 2600
)");
  EXPECT_EQ(s.name, "storm");
  EXPECT_EQ(s.seed, 7u);
  EXPECT_EQ(s.topology, "star");
  EXPECT_EQ(s.topology_size, 5u);
  ASSERT_EQ(s.options.size(), 1u);
  EXPECT_EQ(s.options[0].first, "use_covering");
  EXPECT_EQ(s.subscribers, 6u);
  EXPECT_EQ(s.xpes, (std::vector<std::string>{"/a/b", "//c"}));
  EXPECT_EQ(s.paths, (std::vector<std::string>{"/a/b", "/a/b/c"}));
  EXPECT_DOUBLE_EQ(s.zipf_s, 1.2);
  EXPECT_DOUBLE_EQ(s.heartbeat_interval_ms, 40.0);
  EXPECT_DOUBLE_EQ(s.suspect_after_ms, 120.0);
  EXPECT_DOUBLE_EQ(s.down_after_ms, 300.0);
  EXPECT_DOUBLE_EQ(s.warmup_ms, 150.0);
  EXPECT_DOUBLE_EQ(s.settle_ms, 250.0);
  ASSERT_EQ(s.events.size(), 7u);
  // Events come back sorted by at_ms.
  EXPECT_TRUE(std::is_sorted(
      s.events.begin(), s.events.end(),
      [](const auto& a, const auto& b) { return a.at_ms < b.at_ms; }));
  EXPECT_EQ(s.events[0].kind, EventKind::kRate);
  EXPECT_DOUBLE_EQ(s.events[0].docs_per_sec, 80.0);
  EXPECT_DOUBLE_EQ(s.events[0].until_ms, 2000.0);
  EXPECT_EQ(s.events[1].kind, EventKind::kPublishBurst);
  EXPECT_EQ(s.events[1].count, 25u);
  EXPECT_EQ(s.events[2].kind, EventKind::kKill);
  EXPECT_EQ(s.events[2].broker, 3);
  EXPECT_EQ(s.events[3].kind, EventKind::kRestart);
  EXPECT_EQ(s.events[4].kind, EventKind::kLeave);
  EXPECT_EQ(s.events[5].kind, EventKind::kJoin);
  EXPECT_EQ(s.events[5].broker, 7);
  EXPECT_EQ(s.events[5].neighbors, (std::vector<int>{0, 2}));
  EXPECT_EQ(s.events[6].kind, EventKind::kDiurnal);
  EXPECT_DOUBLE_EQ(s.events[6].period_ms, 800.0);
}

TEST(ScenarioParse, TimeoutDirectiveOverridesQuiescenceDeadlines) {
  Scenario defaults = parse_scenario("name d\n");
  EXPECT_DOUBLE_EQ(defaults.warmup_timeout_ms, 20000.0);
  EXPECT_DOUBLE_EQ(defaults.drain_timeout_ms, 30000.0);
  Scenario s = parse_scenario("timeout 5000 8000\n");
  EXPECT_DOUBLE_EQ(s.warmup_timeout_ms, 5000.0);
  EXPECT_DOUBLE_EQ(s.drain_timeout_ms, 8000.0);
  EXPECT_THROW(parse_scenario("timeout 0 8000\n"), ParseError);
  EXPECT_THROW(parse_scenario("timeout 5000\n"), ParseError);
}

TEST(ScenarioParse, ChurnEventCarriesBrokerRateAndWindow) {
  Scenario s = parse_scenario("at 100 churn 2 500 until 1200\n");
  ASSERT_EQ(s.events.size(), 1u);
  EXPECT_EQ(s.events[0].kind, EventKind::kChurn);
  EXPECT_EQ(s.events[0].broker, 2);
  EXPECT_DOUBLE_EQ(s.events[0].docs_per_sec, 500.0);
  EXPECT_DOUBLE_EQ(s.events[0].until_ms, 1200.0);
  // Churn windows validate like rate windows.
  EXPECT_THROW(parse_scenario("at 500 churn 1 10 until 400\n"), ParseError);
  EXPECT_THROW(parse_scenario("at 0 churn 1 0 until 100\n"), ParseError);
  EXPECT_THROW(parse_scenario("at 0 churn 1 10 til 100\n"), ParseError);
}

TEST(ScenarioWorkload, ChurnEventsStayOutOfThePublishSchedule) {
  Scenario s = parse_scenario(
      "path /a\nat 0 churn 0 1000 until 500\nat 0 publish 3\n");
  EXPECT_EQ(build_schedule(s).size(), 3u);
}

TEST(ScenarioParse, DefaultsFillEmptyPools) {
  Scenario s = parse_scenario("name tiny\n");
  EXPECT_FALSE(s.xpes.empty());
  EXPECT_FALSE(s.paths.empty());
  EXPECT_EQ(s.topology, "tree");
}

TEST(ScenarioParse, RejectsMalformedScripts) {
  // Detector ordering: interval < suspect < down.
  EXPECT_THROW(parse_scenario("heartbeat 100 50 400\n"), ParseError);
  EXPECT_THROW(parse_scenario("heartbeat 50 400 100\n"), ParseError);
  // A rate window must end after it starts.
  EXPECT_THROW(parse_scenario("at 500 rate 10 until 400\n"), ParseError);
  EXPECT_THROW(parse_scenario("at 0 rate 0 until 100\n"), ParseError);
  // Unknown directives and half-formed events are errors, not ignored.
  EXPECT_THROW(parse_scenario("frobnicate 3\n"), ParseError);
  EXPECT_THROW(parse_scenario("at 100 kill\n"), ParseError);
  EXPECT_THROW(parse_scenario("at abc kill 1\n"), ParseError);
}

TEST(ScenarioParse, ErrorsCarryTheLineNumber) {
  try {
    parse_scenario("name ok\nseed 1\nbogus line here\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("3"), std::string::npos);
  }
}

// -- Workload synthesis ------------------------------------------------------

TEST(ScenarioWorkload, ScheduleIsDeterministicAndSorted) {
  Scenario s = parse_scenario(
      "seed 11\npath /a\npath /b\npath /c\n"
      "at 0 rate 100 until 500\nat 200 publish 40\n");
  std::vector<ScheduledDoc> one = build_schedule(s);
  std::vector<ScheduledDoc> two = build_schedule(s);
  ASSERT_EQ(one.size(), two.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_DOUBLE_EQ(one[i].at_ms, two[i].at_ms);
    EXPECT_EQ(one[i].path_index, two[i].path_index);
  }
  EXPECT_TRUE(std::is_sorted(
      one.begin(), one.end(),
      [](const auto& a, const auto& b) { return a.at_ms < b.at_ms; }));
  // 100 docs/s for 500 ms plus a 40-doc burst.
  EXPECT_NEAR(static_cast<double>(one.size()), 90.0, 5.0);
}

TEST(ScenarioWorkload, DiurnalIntegratesToRoughlyHalfPeak) {
  // Raised cosine averages peak/2 over a full period.
  Scenario s = parse_scenario(
      "path /a\nat 0 diurnal 100 1000 until 1000\n");
  std::vector<ScheduledDoc> docs = build_schedule(s);
  EXPECT_NEAR(static_cast<double>(docs.size()), 50.0, 8.0);
  // The crest (mid-period) must be busier than the edges.
  std::size_t edge = 0, crest = 0;
  for (const ScheduledDoc& doc : docs) {
    if (doc.at_ms < 250.0 || doc.at_ms >= 750.0) ++edge;
    else ++crest;
  }
  EXPECT_GT(crest, edge);
}

TEST(ScenarioWorkload, ZipfSkewsTowardRankZero) {
  ZipfSampler zipf(10, 1.5);
  Rng rng(99);
  std::vector<std::size_t> hits(10, 0);
  for (int i = 0; i < 4000; ++i) ++hits[zipf.sample(rng)];
  EXPECT_GT(hits[0], hits[4]);
  EXPECT_GT(hits[0], 4000u / 10u);
  // Uniform degenerate case: no rank starves.
  ZipfSampler flat(4, 0.0);
  std::vector<std::size_t> even(4, 0);
  for (int i = 0; i < 4000; ++i) ++even[flat.sample(rng)];
  for (std::size_t n : even) EXPECT_GT(n, 700u);
}

// -- End-to-end chaos run ----------------------------------------------------

// A two-broker chain survives a kill/restart cycle: the runner must
// report convergence, zero duplicates, and no assured-document loss.
TEST(ScenarioRun, KillRestartCycleHoldsTheOracle) {
  Scenario s = parse_scenario(R"(name smoke
seed 3
topology chain 2
subscribers 2
heartbeat 40 150 400
warmup 100
settle 200
at 0 rate 40 until 900
at 300 kill 1
at 500 restart 1
)");
  scenario::ScenarioReport report = scenario::run_scenario(s);
  EXPECT_TRUE(report.ok) << (report.failures.empty()
                                 ? std::string("no failures recorded")
                                 : report.failures.front());
  EXPECT_GT(report.docs_published, 0u);
  EXPECT_EQ(report.duplicates, 0u);
  ASSERT_EQ(report.membership.size(), 2u);
  EXPECT_EQ(report.membership[0].kind, "kill");
  EXPECT_EQ(report.membership[1].kind, "restart");
  EXPECT_GE(report.membership[1].convergence_ms, 0.0);
  // The kill opened a disruption window; the restart closed it.
  EXPECT_GT(report.loss_window_ms, 0.0);
}

// Live subscribe/unsubscribe churn against a running overlay with a
// multi-threaded matcher: the stable subscribers' delivery oracle must
// hold while churners rebuild routing snapshots hundreds of times.
TEST(ScenarioRun, ChurnDeliveryOracleHoldsMidChurn) {
  Scenario s = parse_scenario(R"(name churn-smoke
seed 9
topology chain 2
option threads 2
subscribers 2
heartbeat 40 150 400
warmup 100
settle 200
timeout 15000 20000
at 0 rate 40 until 800
at 0 churn 0 200 until 800
at 100 churn 1 150 until 700
)");
  scenario::ScenarioReport report = scenario::run_scenario(s);
  EXPECT_TRUE(report.ok) << (report.failures.empty()
                                 ? std::string("no failures recorded")
                                 : report.failures.front());
  EXPECT_GT(report.docs_published, 0u);
  EXPECT_EQ(report.docs_assured, report.docs_published);
  EXPECT_EQ(report.duplicates, 0u);
  EXPECT_TRUE(report.membership.empty());
}

}  // namespace
}  // namespace xroute
