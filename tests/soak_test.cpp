// Soak test: a dissemination network under churn.
//
// On a random cyclic overlay running the full strategy stack (adv +
// covering + imperfect merging), clients subscribe and unsubscribe in
// random interleavings, brokers crash-restart from snapshots, and after
// every batch a probe document must be delivered *exactly* according to
// the current subscription state — the strongest end-to-end invariant the
// system offers.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/network.hpp"
#include "match/pub_match.hpp"
#include "router/snapshot.hpp"
#include "workload/xml_gen.hpp"
#include "workload/xpath_gen.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

class Soak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Soak, ChurnWithRestartsStaysExact) {
  const std::uint64_t seed = GetParam();
  Dtd dtd = psd_dtd();
  Rng rng(seed);

  // Acyclic overlay (a random tree): subscription *churn* requires it —
  // on a cyclic overlay a subscribe/unsubscribe pair can chase each other
  // around a cycle indefinitely (the paper's model is tree-shaped
  // overlays; see DESIGN.md on the cyclic-overlay scope).
  Topology topology = random_connected(9, 0, rng);
  Network::Options options;
  options.topology = topology;
  options.strategy = RoutingStrategy::with_adv_with_cov_ipm(0.15);
  options.dtd = dtd;
  options.seed = seed;
  options.processing_scale = 0.0;
  options.merge_interval = 7;
  Network net(std::move(options));

  int publisher = net.add_publisher(0);
  net.run();

  // Four subscribers scattered over the overlay.
  std::vector<int> subscribers;
  std::vector<std::vector<Xpe>> active(4);
  for (int i = 0; i < 4; ++i) {
    subscribers.push_back(net.add_subscriber(1 + i * 2));
  }
  net.run();

  // Query pool.
  XpathGenOptions xopts;
  xopts.count = 120;
  xopts.seed = seed + 1;
  xopts.wildcard_prob = 0.15;
  xopts.descendant_prob = 0.15;
  xopts.predicate_prob = 0.1;
  std::vector<Xpe> pool = generate_xpaths(dtd, xopts);
  ASSERT_GT(pool.size(), 40u);

  Rng doc_rng(seed + 2);
  std::vector<std::size_t> delivered(4, 0);

  for (int batch = 0; batch < 12; ++batch) {
    // --- churn: a few subscription changes per subscriber -------------
    for (int i = 0; i < 4; ++i) {
      for (int op = 0; op < 3; ++op) {
        if (!active[i].empty() && rng.chance(0.4)) {
          std::size_t victim = rng.index(active[i].size());
          net.unsubscribe(subscribers[i], active[i][victim]);
          active[i].erase(active[i].begin() + static_cast<long>(victim));
        } else {
          const Xpe& q = pool[rng.index(pool.size())];
          bool already = false;
          for (const Xpe& existing : active[i]) {
            if (existing == q) already = true;
          }
          if (already) continue;
          net.subscribe(subscribers[i], q);
          active[i].push_back(q);
        }
      }
    }
    net.run();

    // --- occasional crash-restart of a random broker ------------------
    if (batch % 3 == 2) {
      int broker = static_cast<int>(rng.index(topology.num_brokers));
      std::string snapshot =
          snapshot_to_string(net.simulator().broker(broker));
      net.simulator().restart_broker(broker, snapshot);
    }

    // --- probe: exact delivery against the current state --------------
    XmlDocument doc = generate_document(dtd, doc_rng, {});
    auto paths = extract_paths(doc);
    net.publish(publisher, doc);
    net.run();
    for (int i = 0; i < 4; ++i) {
      bool expect = false;
      for (const Path& p : paths) {
        for (const Xpe& q : active[i]) {
          if (matches(p, q)) {
            expect = true;
            break;
          }
        }
        if (expect) break;
      }
      delivered[i] += expect ? 1u : 0u;
      ASSERT_EQ(net.simulator().notifications_of(subscribers[i]),
                delivered[i])
          << "batch " << batch << " subscriber " << i << " seed " << seed;
    }
  }

  // The soak must have exercised real deliveries (gaps depend on the
  // random queries; broad wildcard queries can legitimately match every
  // probe — the exactness assertions above are the substance).
  std::size_t total = 0;
  for (std::size_t d : delivered) total += d;
  EXPECT_GT(total, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Soak, ::testing::Values(81, 82, 83));

}  // namespace
}  // namespace xroute
