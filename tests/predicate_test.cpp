// Tests for the attribute/text predicate extension (paper §3.1: "our
// approach could be easily extended to element attributes and content").
#include <gtest/gtest.h>

#include "index/subscription_tree.hpp"
#include "match/covering.hpp"
#include "match/pub_match.hpp"
#include <algorithm>
#include <set>

#include "util/error.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/xml_gen.hpp"
#include "workload/xpath_gen.hpp"
#include "xml/parser.hpp"
#include "xpath/parser.hpp"
#include "xpath/predicate.hpp"

namespace xroute {
namespace {

// ---------- parsing & printing ----------

TEST(PredicateParse, RoundTrips) {
  for (const char* text : {
           "/a/b[@x='1']",
           "/a[@x]/b",
           "//media[@type='photo']/media-reference",
           "/a/b[@n<'10']",
           "/a/b[@n>='2.5']",
           "/a/b[@n!='x']/c[@m<='0']",
           "/t[text()='hello world']",
           "/a[@x='1'][@y='2']",
       }) {
    EXPECT_EQ(parse_xpe(text).to_string(), text) << text;
  }
}

TEST(PredicateParse, QuotedAndNumericValues) {
  Xpe a = parse_xpe("/a/b[@n<10]");  // unquoted number
  ASSERT_EQ(a.step(1).predicates.size(), 1u);
  EXPECT_EQ(a.step(1).predicates[0].value, "10");
  EXPECT_EQ(a.to_string(), "/a/b[@n<'10']");  // canonical quoted form

  Xpe b = parse_xpe("/a[@s=\"double quoted\"]");
  EXPECT_EQ(b.step(0).predicates[0].value, "double quoted");
}

TEST(PredicateParse, Errors) {
  EXPECT_THROW(parse_xpe("/a/b[]"), ParseError);
  EXPECT_THROW(parse_xpe("/a/b[@]"), ParseError);
  EXPECT_THROW(parse_xpe("/a/b[@x"), ParseError);
  EXPECT_THROW(parse_xpe("/a/b[@x='v'"), ParseError);
  EXPECT_THROW(parse_xpe("/a/b[@x='v"), ParseError);
  EXPECT_THROW(parse_xpe("/a/b[text()]"), ParseError);  // needs comparison
  EXPECT_THROW(parse_xpe("/a/b[foo='v']"), ParseError);
}

TEST(PredicateParse, DistinctFromUnpredicated) {
  EXPECT_NE(parse_xpe("/a/b[@x='1']"), parse_xpe("/a/b"));
  EXPECT_NE(parse_xpe("/a/b[@x='1']"), parse_xpe("/a/b[@x='2']"));
  XpeHash h;
  EXPECT_NE(h(parse_xpe("/a/b[@x='1']")), h(parse_xpe("/a/b")));
}

// ---------- value comparison ----------

TEST(PredicateValues, NumericVsLexicographic) {
  EXPECT_TRUE(compare_values("9", Predicate::Op::kLt, "10"));    // numeric
  EXPECT_FALSE(compare_values("9a", Predicate::Op::kLt, "10"));  // lexical
  EXPECT_TRUE(compare_values("abc", Predicate::Op::kEq, "abc"));
  EXPECT_TRUE(compare_values("abc", Predicate::Op::kNe, "abd"));
  EXPECT_TRUE(compare_values("2.5", Predicate::Op::kGe, "2.5"));
  EXPECT_FALSE(compare_values("2.4", Predicate::Op::kGe, "2.5"));
}

// ---------- matching against annotated paths ----------

Path annotated_path() {
  XmlDocument doc = parse_xml(
      R"(<news><media type="photo" width="640"><ref>x</ref></media></news>)");
  return extract_paths(doc)[0];  // /news/media/ref with annotations
}

TEST(PredicateMatch, AttributeEquality) {
  Path p = annotated_path();
  EXPECT_TRUE(matches(p, parse_xpe("/news/media[@type='photo']/ref")));
  EXPECT_FALSE(matches(p, parse_xpe("/news/media[@type='video']/ref")));
  EXPECT_TRUE(matches(p, parse_xpe("//media[@type!='video']")));
  EXPECT_TRUE(matches(p, parse_xpe("//media[@type]")));
  EXPECT_FALSE(matches(p, parse_xpe("//media[@missing]")));
}

TEST(PredicateMatch, NumericRanges) {
  Path p = annotated_path();
  EXPECT_TRUE(matches(p, parse_xpe("//media[@width<'1000']")));
  EXPECT_TRUE(matches(p, parse_xpe("//media[@width>='640']")));
  EXPECT_FALSE(matches(p, parse_xpe("//media[@width>'640']")));
}

TEST(PredicateMatch, TextContent) {
  Path p = annotated_path();
  EXPECT_TRUE(matches(p, parse_xpe("//ref[text()='x']")));
  EXPECT_FALSE(matches(p, parse_xpe("//ref[text()='y']")));
}

TEST(PredicateMatch, MultiplePredicatesConjunction) {
  Path p = annotated_path();
  EXPECT_TRUE(matches(p, parse_xpe("//media[@type='photo'][@width='640']")));
  EXPECT_FALSE(matches(p, parse_xpe("//media[@type='photo'][@width='641']")));
}

TEST(PredicateMatch, WildcardWithPredicate) {
  Path p = annotated_path();
  EXPECT_TRUE(matches(p, parse_xpe("/news/*[@type='photo']")));
  EXPECT_FALSE(matches(p, parse_xpe("/news/*[@type='video']")));
}

TEST(PredicateMatch, StructuralPathFailsPredicates) {
  // A predicate can never hold on a path without annotations.
  Path p = parse_path("/news/media/ref");
  EXPECT_FALSE(matches(p, parse_xpe("//media[@type]")));
  EXPECT_TRUE(matches(p, parse_xpe("//media")));
}

// ---------- predicate implication & covering ----------

TEST(PredicateImplication, Rules) {
  auto P = [](const char* text) {
    return parse_xpe((std::string("/a") + text).c_str()).step(0).predicates[0];
  };
  // Anything implies existence.
  EXPECT_TRUE(predicate_implies(P("[@x='5']"), P("[@x]")));
  EXPECT_TRUE(predicate_implies(P("[@x<'2']"), P("[@x]")));
  // Equality implies any satisfied comparison.
  EXPECT_TRUE(predicate_implies(P("[@x='5']"), P("[@x<'10']")));
  EXPECT_TRUE(predicate_implies(P("[@x='5']"), P("[@x!='9']")));
  EXPECT_FALSE(predicate_implies(P("[@x='15']"), P("[@x<'10']")));
  // Interval containment.
  EXPECT_TRUE(predicate_implies(P("[@x<'5']"), P("[@x<'10']")));
  EXPECT_TRUE(predicate_implies(P("[@x<'5']"), P("[@x<='5']")));
  EXPECT_FALSE(predicate_implies(P("[@x<='5']"), P("[@x<'5']")));
  EXPECT_TRUE(predicate_implies(P("[@x>'7']"), P("[@x>='7']")));
  EXPECT_FALSE(predicate_implies(P("[@x<'10']"), P("[@x<'5']")));
  // Different attributes never imply each other.
  EXPECT_FALSE(predicate_implies(P("[@x='5']"), P("[@y='5']")));
  // Existence implies nothing concrete.
  EXPECT_FALSE(predicate_implies(P("[@x]"), P("[@x='5']")));
}

TEST(PredicateCovering, FewerPredicatesCoverMore) {
  EXPECT_TRUE(covers(parse_xpe("/a/b"), parse_xpe("/a/b[@x='1']")));
  EXPECT_FALSE(covers(parse_xpe("/a/b[@x='1']"), parse_xpe("/a/b")));
  EXPECT_TRUE(covers(parse_xpe("/a/b[@x]"), parse_xpe("/a/b[@x='1']")));
  EXPECT_TRUE(covers(parse_xpe("/a/b[@x<'10']"), parse_xpe("/a/b[@x<'5']")));
  EXPECT_FALSE(covers(parse_xpe("/a/b[@x<'5']"), parse_xpe("/a/b[@x<'10']")));
  EXPECT_TRUE(covers(parse_xpe("/a/*"), parse_xpe("/a/b[@x='1']")));
  // Across descendant operators too.
  EXPECT_TRUE(covers(parse_xpe("//b[@x]"), parse_xpe("/a//b[@x='1']")));
}

TEST(PredicateCovering, SoundInTheTree) {
  // Covered predicated XPEs are delivered through their coverers.
  SubscriptionTree tree;
  tree.insert(parse_xpe("//media[@type]"), IfaceId{1});
  auto r = tree.insert(parse_xpe("//media[@type='photo']"), IfaceId{2});
  EXPECT_TRUE(r.covered_by_existing);

  Path p = annotated_path();
  EXPECT_EQ(tree.match_hops(p), ifaces({1, 2}));
  EXPECT_EQ(tree.validate(), "");
}

// ---------- end-to-end through the generated workload ----------

TEST(PredicateWorkload, GeneratorProducesSatisfiableQueries) {
  Dtd dtd = psd_dtd();
  XpathGenOptions options;
  options.count = 200;
  options.predicate_prob = 0.5;
  options.wildcard_prob = 0.0;
  options.descendant_prob = 0.0;
  options.relative_prob = 0.0;
  options.seed = 4;
  auto xpes = generate_xpaths(dtd, options);
  std::size_t with_predicates = 0;
  for (const Xpe& x : xpes) {
    if (x.has_predicates()) ++with_predicates;
  }
  EXPECT_GT(with_predicates, 20u);

  // Generated documents carry the declared attributes, so a reasonable
  // fraction of the predicated queries match real content.
  Rng rng(5);
  std::size_t matched = 0;
  for (int d = 0; d < 30; ++d) {
    XmlDocument doc = generate_document(dtd, rng, {});
    for (const Path& p : extract_paths(doc)) {
      for (const Xpe& x : xpes) {
        if (x.has_predicates() && matches(p, x)) {
          ++matched;
          break;
        }
      }
    }
  }
  EXPECT_GT(matched, 0u);
}

TEST(PredicateWorkload, GeneratedAttributesRespectDeclarations) {
  Dtd dtd = news_dtd();
  Rng rng(6);
  XmlDocument doc = generate_document(dtd, rng, {});
  std::vector<const XmlNode*> stack{&doc.root()};
  while (!stack.empty()) {
    const XmlNode* node = stack.back();
    stack.pop_back();
    const auto& decls = dtd.element(node->name).attributes;
    for (const auto& [key, value] : node->attributes) {
      const AttributeDecl* decl = nullptr;
      for (const auto& d : decls) {
        if (d.name == key) decl = &d;
      }
      ASSERT_NE(decl, nullptr) << node->name << "/@" << key;
      if (!decl->enumeration.empty()) {
        EXPECT_NE(std::find(decl->enumeration.begin(), decl->enumeration.end(),
                            value),
                  decl->enumeration.end())
            << node->name << "/@" << key << "=" << value;
      }
    }
    // Required attributes always present.
    for (const auto& d : decls) {
      if (!d.required) continue;
      bool found = false;
      for (const auto& [key, value] : node->attributes) {
        (void)value;
        if (key == d.name) found = true;
      }
      EXPECT_TRUE(found) << node->name << " missing @" << d.name;
    }
    for (const XmlNode& c : node->children) stack.push_back(&c);
  }
}

}  // namespace
}  // namespace xroute
