// Brute-force oracles and random generators shared by the property tests.
//
// The key semantic objects (covering, advertisement overlap) are defined by
// quantification over concrete paths; over a small alphabet and bounded
// length the quantification is exhaustively checkable, giving ground truth
// against which the paper's PTIME algorithms are verified (soundness
// everywhere; exactness where claimed).
#pragma once

#include <string>
#include <vector>

#include "adv/advertisement.hpp"
#include "match/pub_match.hpp"
#include "util/rng.hpp"
#include "xml/paths.hpp"
#include "xpath/xpe.hpp"

namespace xroute::testing {

/// All concrete paths over `alphabet` with length in [1, max_len].
inline std::vector<Path> all_paths(const std::vector<std::string>& alphabet,
                                   std::size_t max_len) {
  std::vector<Path> out;
  std::vector<Path> frontier{Path{}};
  for (std::size_t len = 1; len <= max_len; ++len) {
    std::vector<Path> next;
    for (const Path& p : frontier) {
      for (const std::string& e : alphabet) {
        Path q = p;
        q.elements.push_back(e);
        out.push_back(q);
        next.push_back(std::move(q));
      }
    }
    frontier = std::move(next);
  }
  return out;
}

/// Ground-truth covering over the finite path set: P(s1) ⊇ P(s2)?
/// (Restricting path length is safe for *refuting* covering; for
/// confirming it we rely on lengths comfortably above both XPE lengths.)
inline bool covers_oracle(const Xpe& s1, const Xpe& s2,
                          const std::vector<Path>& paths) {
  for (const Path& p : paths) {
    if (matches(p, s2) && !matches(p, s1)) return false;
  }
  return true;
}

/// Ground-truth advertisement overlap: ∃ path in P(a) matching s.
/// P(a) is approximated by instantiating every expansion's wildcards over
/// the alphabet — exact when the alphabet includes every element that
/// occurs plus at least one fresh element.
inline bool overlap_oracle(const Advertisement& a, const Xpe& s,
                           const std::vector<std::string>& alphabet,
                           std::size_t max_len) {
  for (const auto& expansion : a.expansions(max_len)) {
    // Instantiate wildcards over the alphabet, depth-first.
    std::vector<std::size_t> wildcard_positions;
    for (std::size_t i = 0; i < expansion.size(); ++i) {
      if (expansion[i] == "*") wildcard_positions.push_back(i);
    }
    Path p;
    p.elements = expansion;
    std::size_t combos = 1;
    for (std::size_t i = 0; i < wildcard_positions.size(); ++i) {
      combos *= alphabet.size();
    }
    for (std::size_t mask = 0; mask < combos; ++mask) {
      std::size_t m = mask;
      for (std::size_t pos : wildcard_positions) {
        p.elements[pos] = alphabet[m % alphabet.size()];
        m /= alphabet.size();
      }
      if (matches(p, s)) return true;
    }
  }
  return false;
}

/// Random XPE over `alphabet`.
inline Xpe random_xpe(Rng& rng, const std::vector<std::string>& alphabet,
                      std::size_t max_len, double wildcard_prob = 0.25,
                      double descendant_prob = 0.25,
                      double relative_prob = 0.3) {
  std::size_t len = 1 + rng.index(max_len);
  bool relative = rng.chance(relative_prob);
  std::vector<Step> steps;
  for (std::size_t i = 0; i < len; ++i) {
    Step step;
    if (i == 0) {
      step.axis = relative ? Axis::kDescendant : Axis::kChild;
    } else {
      step.axis =
          rng.chance(descendant_prob) ? Axis::kDescendant : Axis::kChild;
    }
    step.name = rng.chance(wildcard_prob) ? std::string(kWildcard)
                                          : rng.pick(alphabet);
    steps.push_back(std::move(step));
  }
  return relative ? Xpe::relative(std::move(steps))
                  : Xpe::absolute(std::move(steps));
}

/// Random concrete path over `alphabet`.
inline Path random_path(Rng& rng, const std::vector<std::string>& alphabet,
                        std::size_t max_len) {
  Path p;
  std::size_t len = 1 + rng.index(max_len);
  for (std::size_t i = 0; i < len; ++i) p.elements.push_back(rng.pick(alphabet));
  return p;
}

/// Random non-recursive advertisement.
inline Advertisement random_flat_adv(Rng& rng,
                                     const std::vector<std::string>& alphabet,
                                     std::size_t max_len,
                                     double wildcard_prob = 0.25) {
  std::vector<std::string> elements;
  std::size_t len = 1 + rng.index(max_len);
  for (std::size_t i = 0; i < len; ++i) {
    elements.push_back(rng.chance(wildcard_prob) ? std::string(kWildcard)
                                                 : rng.pick(alphabet));
  }
  return Advertisement::from_elements(std::move(elements));
}

inline const std::vector<std::string>& small_alphabet() {
  static const std::vector<std::string> alphabet{"a", "b", "c"};
  return alphabet;
}

}  // namespace xroute::testing
