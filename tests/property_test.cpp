// Property-based tests: the paper's PTIME algorithms are checked against
// brute-force path-enumeration oracles over a small alphabet.
//
//  * covering:   sound everywhere (a reported covering is never wrong);
//                exact on the '//'-free fragment.
//  * adv×sub:    exact for non-recursive advertisements and for the
//                automaton on recursive ones.
//  * tree:       invariants hold and matching equals a flat scan under
//                random insert/remove interleavings.
#include <gtest/gtest.h>

#include <set>

#include "dtd/universe.hpp"
#include "index/merging.hpp"
#include "index/subscription_tree.hpp"
#include "match/adv_automaton.hpp"
#include "match/adv_match.hpp"
#include "match/covering.hpp"
#include "match/rec_adv_match.hpp"
#include "oracles.hpp"
#include "workload/dtd_gen.hpp"
#include "workload/xpath_gen.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

using testing::all_paths;
using testing::covers_oracle;
using testing::overlap_oracle;
using testing::random_flat_adv;
using testing::random_path;
using testing::random_xpe;
using testing::small_alphabet;

class CoveringProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoveringProperty, SoundAgainstOracle) {
  Rng rng(GetParam());
  const auto paths = all_paths(small_alphabet(), 6);
  for (int i = 0; i < 400; ++i) {
    Xpe s1 = random_xpe(rng, small_alphabet(), 4);
    Xpe s2 = random_xpe(rng, small_alphabet(), 4);
    if (covers(s1, s2)) {
      EXPECT_TRUE(covers_oracle(s1, s2, paths))
          << s1.to_string() << " claimed to cover " << s2.to_string();
    }
  }
}

TEST_P(CoveringProperty, ExactOnSimpleFragment) {
  // Without '//' the homomorphism test is complete as well — except for
  // the anchored-covers-floating direction, which the paper's dispatch
  // rejects wholesale ("an absolute XPE cannot cover a relative XPE");
  // all-wildcard corner cases like "/*" ⊇ "*" are real coverings it
  // misses. Exactness is asserted for every other pair.
  Rng rng(GetParam() + 1000);
  const auto paths = all_paths(small_alphabet(), 6);
  for (int i = 0; i < 400; ++i) {
    Xpe s1 = random_xpe(rng, small_alphabet(), 4, 0.3, /*descendant=*/0.0);
    Xpe s2 = random_xpe(rng, small_alphabet(), 4, 0.3, /*descendant=*/0.0);
    if (s1.anchored() && !s2.anchored()) continue;
    EXPECT_EQ(covers(s1, s2), covers_oracle(s1, s2, paths))
        << s1.to_string() << " vs " << s2.to_string();
  }
}

TEST(CoveringKnownIncompleteness, AnchoredWildcardOverFloating) {
  // "/*" truly covers "*" (both match every non-empty path) but the
  // paper's dispatch — which we follow — reports no covering. Document
  // the sound-but-incomplete behaviour.
  const auto paths = all_paths(small_alphabet(), 4);
  EXPECT_TRUE(covers_oracle(parse_xpe("/*"), parse_xpe("*"), paths));
  EXPECT_FALSE(covers(parse_xpe("/*"), parse_xpe("*")));
}

TEST_P(CoveringProperty, ReflexiveAndAntisymmetricish) {
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 200; ++i) {
    Xpe s = random_xpe(rng, small_alphabet(), 5);
    EXPECT_TRUE(covers(s, s)) << s.to_string();
  }
}

TEST_P(CoveringProperty, SoundTransitivity) {
  // If the algorithm reports a >= b and b >= c, then a >= c must hold in
  // truth (the algorithm itself may or may not re-derive it).
  Rng rng(GetParam() + 3000);
  const auto paths = all_paths(small_alphabet(), 6);
  for (int i = 0; i < 300; ++i) {
    Xpe a = random_xpe(rng, small_alphabet(), 3);
    Xpe b = random_xpe(rng, small_alphabet(), 4);
    Xpe c = random_xpe(rng, small_alphabet(), 4);
    if (covers(a, b) && covers(b, c)) {
      EXPECT_TRUE(covers_oracle(a, c, paths))
          << a.to_string() << " >= " << b.to_string() << " >= "
          << c.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoveringProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

class AdvMatchProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdvMatchProperty, NonRecursiveExactAgainstOracle) {
  Rng rng(GetParam());
  for (int i = 0; i < 400; ++i) {
    Advertisement a = random_flat_adv(rng, small_alphabet(), 5);
    Xpe s = random_xpe(rng, small_alphabet(), 5);
    bool expected = overlap_oracle(a, s, small_alphabet(), 7);
    EXPECT_EQ(nonrec_adv_overlaps(a.flat_elements(), s), expected)
        << a.to_string() << " vs " << s.to_string();
    EXPECT_EQ(AdvAutomaton(a).overlaps(s), expected)
        << "automaton: " << a.to_string() << " vs " << s.to_string();
  }
}

TEST_P(AdvMatchProperty, KmpStrategyNeverDisagreesWithNaive) {
  Rng rng(GetParam() + 500);
  for (int i = 0; i < 500; ++i) {
    Advertisement a = random_flat_adv(rng, small_alphabet(), 6);
    Xpe s = random_xpe(rng, small_alphabet(), 4, 0.3, 0.0, 1.0);  // relative
    EXPECT_EQ(
        rel_expr_and_adv(a.flat_elements(), s, SearchStrategy::kNaive),
        rel_expr_and_adv(a.flat_elements(), s, SearchStrategy::kKmpWhenSound))
        << a.to_string() << " vs " << s.to_string();
  }
}

TEST_P(AdvMatchProperty, SimpleRecursiveFig3AgreesWithAutomaton) {
  Rng rng(GetParam() + 900);
  for (int i = 0; i < 300; ++i) {
    // Random a1 (a2)+ a3 with small parts.
    auto part = [&](std::size_t max_len, std::size_t min_len) {
      std::vector<std::string> out;
      std::size_t len = min_len + rng.index(max_len - min_len + 1);
      for (std::size_t k = 0; k < len; ++k) {
        out.push_back(rng.chance(0.25) ? std::string(kWildcard)
                                       : rng.pick(small_alphabet()));
      }
      return out;
    };
    std::vector<std::string> a1 = part(2, 0), a2 = part(2, 1), a3 = part(2, 0);
    std::vector<AdvNode> nodes;
    for (auto& e : a1) nodes.push_back(AdvNode::element(e));
    std::vector<AdvNode> group;
    for (auto& e : a2) group.push_back(AdvNode::element(e));
    nodes.push_back(AdvNode::group(group));
    for (auto& e : a3) nodes.push_back(AdvNode::element(e));
    Advertisement adv(nodes);

    Xpe s = random_xpe(rng, small_alphabet(), 6, 0.25, 0.0, 0.0);  // absolute
    EXPECT_EQ(abs_expr_and_sim_rec_adv(a1, a2, a3, s),
              AdvAutomaton(adv).overlaps(s))
        << adv.to_string() << " vs " << s.to_string();
    EXPECT_EQ(abs_expr_and_rec_adv(adv, s), AdvAutomaton(adv).overlaps(s))
        << "expansion enumeration: " << adv.to_string() << " vs "
        << s.to_string();
  }
}

TEST_P(AdvMatchProperty, PubMatchedImpliesAdvOverlap) {
  // If a publication in P(a) matches s, then a and s overlap — ties the
  // three matchers together end-to-end.
  Rng rng(GetParam() + 1300);
  for (int i = 0; i < 400; ++i) {
    Advertisement a = random_flat_adv(rng, small_alphabet(), 5);
    // Instantiate a publication from the advertisement.
    Path p;
    for (const std::string& e : a.flat_elements()) {
      p.elements.push_back(e == kWildcard ? rng.pick(small_alphabet()) : e);
    }
    Xpe s = random_xpe(rng, small_alphabet(), 5);
    if (matches(p, s)) {
      EXPECT_TRUE(nonrec_adv_overlaps(a.flat_elements(), s))
          << a.to_string() << " pub " << p.to_string() << " sub "
          << s.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdvMatchProperty,
                         ::testing::Values(11, 12, 13, 14, 15));

class TreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeProperty, MatchingEqualsFlatScanUnderChurn) {
  Rng rng(GetParam());
  SubscriptionTree tree;
  std::vector<std::pair<Xpe, IfaceId>> reference;  // flat mirror

  for (int step = 0; step < 300; ++step) {
    if (!reference.empty() && rng.chance(0.3)) {
      // Remove a random (xpe, hop).
      std::size_t victim = rng.index(reference.size());
      EXPECT_TRUE(tree.remove(reference[victim].first,
                              reference[victim].second));
      reference.erase(reference.begin() + static_cast<long>(victim));
    } else {
      Xpe s = random_xpe(rng, small_alphabet(), 4);
      IfaceId hop{rng.uniform_int(0, 3)};
      tree.insert(s, hop);
      // Mirror: avoid duplicate (xpe, hop) pairs.
      bool present = false;
      for (auto& [x, h] : reference) {
        if (x == s && h == hop) present = true;
      }
      if (!present) reference.emplace_back(s, hop);
    }

    ASSERT_EQ(tree.validate(), "") << "after step " << step;

    Path p = random_path(rng, small_alphabet(), 6);
    IfaceSet expected;
    for (const auto& [x, h] : reference) {
      if (matches(p, x)) expected.insert(h);
    }
    ASSERT_EQ(tree.match_hops(p), expected)
        << "path " << p.to_string() << " step " << step;
  }

  // Drain everything; the tree must empty out.
  for (auto& [x, h] : reference) {
    EXPECT_TRUE(tree.remove(x, h));
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.validate(), "");
}

TEST_P(TreeProperty, CoveredFlagSoundness) {
  // If insert reports covered_by_existing, some earlier subscription truly
  // covers the newcomer.
  Rng rng(GetParam() + 400);
  const auto paths = all_paths(small_alphabet(), 6);
  SubscriptionTree tree;
  std::vector<Xpe> inserted;
  for (int i = 0; i < 150; ++i) {
    Xpe s = random_xpe(rng, small_alphabet(), 4);
    auto result = tree.insert(s, IfaceId{0});
    if (result.was_new && result.covered_by_existing) {
      bool truly_covered = false;
      for (const Xpe& other : inserted) {
        if (covers_oracle(other, s, paths)) {
          truly_covered = true;
          break;
        }
      }
      EXPECT_TRUE(truly_covered) << s.to_string();
    }
    if (result.was_new) inserted.push_back(s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeProperty, ::testing::Values(21, 22, 23));

}  // namespace
}  // namespace xroute

namespace predicate_props {

using namespace xroute;
using xroute::testing::small_alphabet;

/// Random XPE whose concrete steps may carry predicates over a tiny
/// attribute vocabulary.
Xpe random_predicated_xpe(Rng& rng) {
  Xpe base = xroute::testing::random_xpe(rng, small_alphabet(), 4, 0.2, 0.2);
  std::vector<Step> steps = base.steps();
  for (Step& step : steps) {
    if (step.is_wildcard() || !rng.chance(0.4)) continue;
    Predicate p;
    p.target = Predicate::Target::kAttribute;
    p.name = rng.chance(0.5) ? "u" : "v";
    switch (rng.index(4)) {
      case 0: p.op = Predicate::Op::kExists; break;
      case 1:
        p.op = Predicate::Op::kEq;
        p.value = std::to_string(rng.uniform_int(0, 3));
        break;
      case 2:
        p.op = Predicate::Op::kLt;
        p.value = std::to_string(rng.uniform_int(1, 4));
        break;
      default:
        p.op = Predicate::Op::kGe;
        p.value = std::to_string(rng.uniform_int(0, 3));
        break;
    }
    step.predicates.push_back(std::move(p));
  }
  return base.relative() ? Xpe::relative(std::move(steps))
                         : Xpe::absolute(std::move(steps));
}

/// Random annotated path: small element alphabet, attributes u/v with
/// small numeric values (sometimes absent).
Path random_annotated_path(Rng& rng) {
  Path p = xroute::testing::random_path(rng, small_alphabet(), 5);
  for (std::size_t i = 0; i < p.size(); ++i) {
    PathNodeData data;
    if (rng.chance(0.7)) data.attributes["u"] = std::to_string(rng.uniform_int(0, 3));
    if (rng.chance(0.7)) data.attributes["v"] = std::to_string(rng.uniform_int(0, 3));
    p.data.push_back(std::move(data));
  }
  return p;
}

class PredicateCoveringProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PredicateCoveringProperty, SoundOnAnnotatedPaths) {
  // If covers(s1, s2) then every annotated path matching s2 matches s1.
  Rng rng(GetParam());
  std::vector<Path> sample;
  for (int i = 0; i < 1500; ++i) sample.push_back(random_annotated_path(rng));
  std::size_t confirmed = 0;
  for (int i = 0; i < 500; ++i) {
    Xpe s1 = random_predicated_xpe(rng);
    Xpe s2 = random_predicated_xpe(rng);
    if (!covers(s1, s2)) continue;
    ++confirmed;
    for (const Path& p : sample) {
      if (matches(p, s2)) {
        ASSERT_TRUE(matches(p, s1))
            << s1.to_string() << " claimed to cover " << s2.to_string()
            << " but missed " << p.to_string();
      }
    }
  }
  EXPECT_GT(confirmed, 0u);  // the test must exercise real coverings
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateCoveringProperty,
                         ::testing::Values(51, 52, 53));

class MergeSoundnessProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergeSoundnessProperty, AppliedMergersNeverLoseDeliveries) {
  // Run merge passes over random trees; every publication matched by an
  // original's hops before merging must still route to those hops after.
  Rng rng(GetParam());
  DtdGenOptions gopts;
  gopts.elements = 12;
  Dtd dtd = generate_random_dtd(rng, gopts);
  PathUniverse::Options uopts;
  uopts.max_depth = 8;
  uopts.max_paths = 4000;
  PathUniverse universe(dtd, uopts);
  if (universe.paths().empty()) GTEST_SKIP();

  XpathGenOptions xopts;
  xopts.count = 120;
  xopts.seed = GetParam();
  xopts.wildcard_prob = 0.2;
  xopts.descendant_prob = 0.1;
  auto xpes = generate_xpaths(dtd, xopts);

  SubscriptionTree tree;
  std::vector<std::pair<Xpe, IfaceId>> reference;
  for (std::size_t i = 0; i < xpes.size(); ++i) {
    IfaceId hop{static_cast<int>(i % 5)};
    tree.insert(xpes[i], hop);
    reference.emplace_back(xpes[i], hop);
  }

  MergeOptions mopts;
  mopts.max_imperfect_degree = 0.3;
  mopts.rule_general = true;
  MergeEngine engine(&universe, mopts);
  MergeReport report = engine.run(tree);
  ASSERT_EQ(tree.validate(), "");

  std::size_t checked = 0;
  for (const Path& p : universe.paths()) {
    if (++checked > 1500) break;
    IfaceSet expected;
    for (const auto& [xpe, hop] : reference) {
      if (matches(p, xpe)) expected.insert(hop);
    }
    IfaceSet got = tree.match_hops(p);
    for (IfaceId hop : expected) {
      ASSERT_TRUE(got.count(hop))
          << "hop " << hop << " lost for " << p.to_string() << " after "
          << report.merges.size() << " merges";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeSoundnessProperty,
                         ::testing::Values(61, 62, 63, 64));

}  // namespace predicate_props
