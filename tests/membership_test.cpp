// Membership tests: the dynamic-overlay layer over real sockets — the
// handshake deadline, the heartbeat failure detector (driven by a raw
// socket that completes the handshake and then goes silent, the one
// failure mode TCP cannot report), the incarnation fence against zombie
// rejoins, live join's routing-state pull, planned leave's route
// handback, and the quarantine spool with its overflow counter.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "router/message.hpp"
#include "transport/broker_node.hpp"
#include "transport/client.hpp"
#include "wire/codec.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

using transport::TransportBroker;
using transport::TransportClient;

/// Polls `done` every millisecond until it holds or the deadline passes.
bool eventually(const std::function<bool()>& done, int timeout_ms = 10000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (!done()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// Broker options with a detector fast enough for test deadlines. The
/// suite runs on loaded CI machines: intervals are tight relative to the
/// 10 s poll deadlines, not to wall-clock smoothness.
TransportBroker::Options broker_opts(int id) {
  TransportBroker::Options opts;
  opts.id = id;
  opts.config.use_advertisements = false;
  opts.handshake_timeout_ms = 5000.0;
  opts.heartbeat.interval_ms = 25.0;
  opts.heartbeat.suspect_after_ms = 100.0;
  opts.heartbeat.down_after_ms = 300.0;
  opts.dial_backoff = BackoffPolicy{20.0, 2.0, 200.0, -1};
  return opts;
}

/// Client options matching broker_opts(): the client must beacon at least
/// as fast as the broker's detector or it gets reaped while idle.
TransportClient::Options client_opts(int id) {
  TransportClient::Options opts;
  opts.id = id;
  opts.heartbeat.interval_ms = 25.0;
  opts.heartbeat.suspect_after_ms = 100.0;
  opts.heartbeat.down_after_ms = 300.0;
  opts.dial_backoff = BackoffPolicy{20.0, 2.0, 200.0, -1};
  return opts;
}

/// Blocking TCP connect to a local broker; returns the fd (or -1).
int raw_connect(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void send_all(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, 0);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

/// Publishes fresh documents on `path` until the subscriber holds one of
/// them — the routing-converged analogue of a single publish, immune to
/// races between subscription propagation and the publication.
std::uint64_t publish_until_delivered(TransportClient& publisher,
                                      TransportClient& subscriber,
                                      const std::string& path,
                                      std::uint64_t first_id,
                                      int timeout_ms = 10000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  std::uint64_t id = first_id;
  while (std::chrono::steady_clock::now() < deadline) {
    PublishMsg pub;
    pub.path = parse_path(path);
    pub.doc_id = id;
    pub.doc_bytes = 100;
    publisher.send(Message{pub});
    auto retry = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(150);
    while (std::chrono::steady_clock::now() < retry) {
      if (subscriber.delivered_docs().count(id)) return id;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ++id;
  }
  return 0;
}

// -- Handshake deadline ------------------------------------------------------

TEST(Membership, HandshakeTimeoutReapsSilentSocket) {
  TransportBroker::Options opts = broker_opts(0);
  opts.handshake_timeout_ms = 100.0;
  TransportBroker broker(std::move(opts));
  broker.start();

  int fd = raw_connect(broker.port());
  ASSERT_GE(fd, 0);
  // Say nothing: the broker must reap the connection at the deadline
  // rather than holding the slot forever.
  EXPECT_TRUE(eventually([&] { return broker.handshake_timeouts() >= 1; }));
  EXPECT_EQ(broker.broker_peers(), 0u);
  EXPECT_EQ(broker.client_peers(), 0u);
  // The close reaches us as EOF.
  char byte;
  ssize_t n;
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  do {
    n = ::recv(fd, &byte, 1, MSG_DONTWAIT);
    if (n == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  } while (std::chrono::steady_clock::now() < deadline);
  EXPECT_EQ(n, 0);
  ::close(fd);
  broker.stop();
}

// -- Failure detection -------------------------------------------------------

// A peer that freezes (SIGSTOP, network partition, machine death) keeps
// its TCP connection alive but falls silent — only the heartbeat detector
// can see it. A raw socket that completes the broker handshake, plants a
// subscription, and then never beacons is exactly that peer.
TEST(Membership, HeartbeatDetectsSilentPeerAndQuarantinesItsRoutes) {
  TransportBroker broker(broker_opts(0));
  broker.start();

  int fd = raw_connect(broker.port());
  ASSERT_GE(fd, 0);
  wire::Hello hello;
  hello.kind = wire::Hello::PeerKind::kBroker;
  hello.peer_id = 9;
  hello.max_version = wire::kProtocolVersion;
  send_all(fd, wire::encode_hello(hello));
  send_all(fd, wire::encode_frame(Message::subscribe(parse_xpe("/x"))));
  ASSERT_TRUE(eventually([&] { return broker.broker_peers() == 1; }));

  // Silence. The detector must pass through suspicion on its way down.
  EXPECT_TRUE(eventually([&] { return broker.suspect_events() >= 1; }));
  EXPECT_TRUE(eventually([&] { return broker.heartbeat_downs() >= 1; }));
  EXPECT_TRUE(eventually([&] { return broker.broker_peers() == 0; }));
  ::close(fd);

  // The dead peer's subscription is quarantined, not dropped: a matching
  // publication is spooled for its return instead of vanishing.
  TransportClient publisher(client_opts(50));
  publisher.start("127.0.0.1", broker.port());
  ASSERT_TRUE(publisher.wait_connected());
  PublishMsg pub;
  pub.path = parse_path("/x");
  pub.doc_id = 1;
  pub.doc_bytes = 100;
  publisher.send(Message{pub});
  EXPECT_TRUE(eventually([&] { return broker.spooled_frames() >= 1; }));
  EXPECT_EQ(broker.peer_down_drops(), 0u);

  publisher.stop();
  broker.stop();
}

// With no spool budget the quarantined interface cannot buffer: the
// forward is counted as a peer-down drop instead of silently vanishing.
TEST(Membership, SpoolOverflowCountsPeerDownDrops) {
  TransportBroker::Options opts = broker_opts(0);
  opts.spool_limit_bytes = 0;
  TransportBroker broker(std::move(opts));
  broker.start();

  int fd = raw_connect(broker.port());
  ASSERT_GE(fd, 0);
  wire::Hello hello;
  hello.kind = wire::Hello::PeerKind::kBroker;
  hello.peer_id = 9;
  hello.max_version = wire::kProtocolVersion;
  send_all(fd, wire::encode_hello(hello));
  send_all(fd, wire::encode_frame(Message::subscribe(parse_xpe("/x"))));
  ASSERT_TRUE(eventually([&] { return broker.broker_peers() == 1; }));
  ASSERT_TRUE(eventually([&] { return broker.heartbeat_downs() >= 1; }));
  ::close(fd);

  TransportClient publisher(client_opts(50));
  publisher.start("127.0.0.1", broker.port());
  ASSERT_TRUE(publisher.wait_connected());
  PublishMsg pub;
  pub.path = parse_path("/x");
  pub.doc_id = 1;
  pub.doc_bytes = 100;
  publisher.send(Message{pub});
  EXPECT_TRUE(eventually([&] { return broker.peer_down_drops() >= 1; }));
  EXPECT_EQ(broker.spooled_frames(), 0u);

  publisher.stop();
  broker.stop();
}

// -- Incarnation fence -------------------------------------------------------

TEST(Membership, StaleIncarnationIsRejectedUntilItOutlivesTheDead) {
  TransportBroker survivor(broker_opts(0));
  survivor.start();

  // First life of broker 7 announces incarnation 1 (it has restarted
  // before), then crashes.
  {
    TransportBroker::Options opts = broker_opts(7);
    opts.incarnation = 1;
    TransportBroker first_life(std::move(opts));
    first_life.start();
    first_life.connect_to("127.0.0.1", survivor.port());
    ASSERT_TRUE(eventually([&] { return survivor.broker_peers() == 1; }));
    first_life.stop();
  }
  ASSERT_TRUE(eventually([&] { return survivor.broker_peers() == 0; }));

  // A zombie announcing an OLDER incarnation must never become a peer —
  // it would resurrect routing state the overlay has already moved past.
  {
    TransportBroker::Options opts = broker_opts(7);
    opts.incarnation = 0;
    opts.dial_backoff = BackoffPolicy{20.0, 2.0, 100.0, 4};
    TransportBroker zombie(std::move(opts));
    zombie.start();
    zombie.connect_to("127.0.0.1", survivor.port());
    EXPECT_FALSE(
        eventually([&] { return survivor.broker_peers() != 0; }, 500));
    zombie.stop();
  }

  // The true successor carries a higher incarnation and is admitted.
  TransportBroker::Options opts = broker_opts(7);
  opts.incarnation = 2;
  TransportBroker successor(std::move(opts));
  successor.start();
  successor.connect_to("127.0.0.1", survivor.port());
  EXPECT_TRUE(eventually([&] { return survivor.broker_peers() == 1; }));
  successor.stop();
  survivor.stop();
}

// -- Live join ---------------------------------------------------------------

// A broker joining a running overlay pulls routing state through the
// resync handshake: a publication entering at the newcomer reaches a
// subscriber that never re-sent its subscription.
TEST(Membership, LiveJoinPullsRoutingState) {
  TransportBroker a(broker_opts(0));
  TransportBroker b(broker_opts(1));
  a.start();
  b.start();
  b.connect_to("127.0.0.1", a.port());
  ASSERT_TRUE(eventually(
      [&] { return a.broker_peers() == 1 && b.broker_peers() == 1; }));

  TransportClient subscriber(client_opts(60));
  subscriber.start("127.0.0.1", a.port());
  ASSERT_TRUE(subscriber.wait_connected());
  subscriber.send(Message::subscribe(parse_xpe("/x")));
  subscriber.sync();

  // Prove the subscription propagated before the join.
  TransportClient seed(client_opts(61));
  seed.start("127.0.0.1", b.port());
  ASSERT_TRUE(seed.wait_connected());
  ASSERT_NE(publish_until_delivered(seed, subscriber, "/x", 1), 0u);

  TransportBroker joiner(broker_opts(2));
  joiner.start();
  joiner.join({{"127.0.0.1", b.port()}});
  ASSERT_TRUE(eventually([&] { return joiner.resyncs_completed() >= 1; }));
  EXPECT_GT(joiner.resync_bytes_in(), 0u);
  EXPECT_GT(joiner.last_join_convergence_ms(), 0.0);

  // A document entering the overlay at the newcomer finds its way to the
  // subscriber two hops away purely from the pulled state.
  TransportClient publisher(client_opts(62));
  publisher.start("127.0.0.1", joiner.port());
  ASSERT_TRUE(publisher.wait_connected());
  EXPECT_NE(publish_until_delivered(publisher, subscriber, "/x", 1000), 0u);
  EXPECT_EQ(subscriber.duplicate_publications(), 0u);

  publisher.stop();
  seed.stop();
  subscriber.stop();
  joiner.stop();
  b.stop();
  a.stop();
}

// -- Planned leave -----------------------------------------------------------

// A goodbye hands routes back: after a clean leave the survivor holds no
// quarantined interface, spools nothing, and drops nothing — the leaver
// is simply gone, detector untriggered.
TEST(Membership, PlannedLeaveHandsRoutesBack) {
  TransportBroker survivor(broker_opts(0));
  survivor.start();

  TransportBroker leaver(broker_opts(1));
  leaver.start();
  leaver.connect_to("127.0.0.1", survivor.port());
  ASSERT_TRUE(eventually([&] { return survivor.broker_peers() == 1; }));

  // Plant a subscription reachable only through the leaver, then detach
  // its client so the leave is the only thing withdrawing the route.
  {
    TransportClient subscriber(client_opts(70));
    subscriber.start("127.0.0.1", leaver.port());
    ASSERT_TRUE(subscriber.wait_connected());
    subscriber.send(Message::subscribe(parse_xpe("/x")));
    subscriber.sync();
    ASSERT_TRUE(subscriber.drain());
    subscriber.stop();
  }

  EXPECT_TRUE(leaver.leave());
  ASSERT_TRUE(eventually([&] { return survivor.broker_peers() == 0; }));

  // Publications toward the departed broker's former subscription must
  // not spool or drop: its routes were withdrawn at goodbye time.
  TransportClient publisher(client_opts(71));
  publisher.start("127.0.0.1", survivor.port());
  ASSERT_TRUE(publisher.wait_connected());
  PublishMsg pub;
  pub.path = parse_path("/x");
  pub.doc_id = 1;
  pub.doc_bytes = 100;
  publisher.send(Message{pub});
  publisher.sync();
  ASSERT_TRUE(publisher.drain());
  // Settle: give a mistaken spool/drop time to show up.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(survivor.spooled_frames(), 0u);
  EXPECT_EQ(survivor.peer_down_drops(), 0u);
  EXPECT_EQ(survivor.heartbeat_downs(), 0u);

  publisher.stop();
  survivor.stop();
}

// -- Crash rejoin ------------------------------------------------------------

// The full cycle: a broker dies mid-stream, the survivor quarantines its
// routes, the broker rejoins on the same port with a bumped incarnation,
// resyncs, and the subscriber behind it receives fresh documents exactly
// once.
TEST(Membership, CrashRejoinRestoresDeliveryWithoutDuplicates) {
  TransportBroker a(broker_opts(0));
  a.start();

  std::uint16_t b_port = 0;
  {
    TransportBroker b(broker_opts(1));
    b.start();
    b_port = b.port();
    b.connect_to("127.0.0.1", a.port());
    ASSERT_TRUE(eventually(
        [&] { return a.broker_peers() == 1 && b.broker_peers() == 1; }));

    // Crash: stop() sends no goodbye. The survivor sees the connection
    // die and must quarantine — not hand back — broker 1's routes.
    b.stop();
  }
  ASSERT_TRUE(eventually([&] { return a.broker_peers() == 0; }));

  // Rejoin: same port, next incarnation, explicit join to resync.
  TransportBroker::Options opts = broker_opts(1);
  opts.listen_port = b_port;
  opts.incarnation = 1;
  TransportBroker reborn(std::move(opts));
  reborn.start();
  reborn.join({{"127.0.0.1", a.port()}});
  ASSERT_TRUE(eventually([&] { return reborn.resyncs_completed() >= 1; }));
  ASSERT_TRUE(eventually(
      [&] { return a.broker_peers() == 1 && reborn.broker_peers() == 1; }));

  TransportClient subscriber(client_opts(80));
  subscriber.start("127.0.0.1", reborn.port());
  ASSERT_TRUE(subscriber.wait_connected());
  subscriber.send(Message::subscribe(parse_xpe("/x")));
  subscriber.sync();

  TransportClient publisher(client_opts(81));
  publisher.start("127.0.0.1", a.port());
  ASSERT_TRUE(publisher.wait_connected());
  EXPECT_NE(publish_until_delivered(publisher, subscriber, "/x", 1), 0u);
  EXPECT_EQ(subscriber.duplicate_publications(), 0u);

  publisher.stop();
  subscriber.stop();
  reborn.stop();
  a.stop();
}

}  // namespace
}  // namespace xroute
