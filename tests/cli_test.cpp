// xroutectl CLI contract: unknown subcommands and missing arguments print
// the usage text and exit 2; help exits 0; documented verdict exit codes
// hold. Runs the real binary (XROUTECTL_PATH, injected by CMake).
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  ///< stdout + stderr, interleaved
};

CliResult run_cli(const std::string& args) {
  // Unique per process AND per call: ctest runs each test in its own
  // process, all sharing TempDir().
  static int invocation = 0;
  std::string capture = ::testing::TempDir() + "xroutectl_cli_" +
                        std::to_string(::getpid()) + "_" +
                        std::to_string(invocation++) + ".txt";
  std::string command =
      std::string(XROUTECTL_PATH) + " " + args + " > " + capture + " 2>&1";
  int raw = std::system(command.c_str());
  CliResult result;
  result.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  std::ifstream in(capture);
  std::ostringstream os;
  os << in.rdbuf();
  result.output = os.str();
  std::remove(capture.c_str());
  return result;
}

TEST(XroutectlCli, UnknownCommandPrintsUsageAndExitsTwo) {
  CliResult result = run_cli("frobnicate");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown command 'frobnicate'"),
            std::string::npos);
  EXPECT_NE(result.output.find("usage: xroutectl"), std::string::npos);
}

TEST(XroutectlCli, NoCommandPrintsUsageAndExitsTwo) {
  CliResult result = run_cli("");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("usage: xroutectl"), std::string::npos);
}

TEST(XroutectlCli, MissingArgumentsPrintUsageAndExitTwo) {
  for (const char* args : {"parse", "covers '/a'", "match", "serve",
                           "connect 127.0.0.1", "sub 127.0.0.1 1", "pub"}) {
    CliResult result = run_cli(args);
    EXPECT_EQ(result.exit_code, 2) << "args: " << args;
    EXPECT_NE(result.output.find("usage: xroutectl"), std::string::npos)
        << "args: " << args;
  }
}

TEST(XroutectlCli, HelpExitsZero) {
  CliResult result = run_cli("help");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("usage: xroutectl"), std::string::npos);
  EXPECT_NE(result.output.find("serve"), std::string::npos);
}

TEST(XroutectlCli, CoversVerdictExitCodes) {
  EXPECT_EQ(run_cli("covers '/a' '/a/b'").exit_code, 0);
  EXPECT_EQ(run_cli("covers '/a/b' '/a'").exit_code, 1);
}

TEST(XroutectlCli, ParseEchoesTheXpe) {
  CliResult result = run_cli("parse '/a/b'");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("/a/b"), std::string::npos);
}

TEST(XroutectlCli, ConnectFailsCleanlyWhenNoBrokerListens) {
  // Port 1 is essentially never bound; one dial, no retry, exit 1.
  CliResult result = run_cli("connect 127.0.0.1 1");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("no broker"), std::string::npos);
}

TEST(XroutectlCli, BadPortIsAUsageError) {
  CliResult result = run_cli("connect 127.0.0.1 notaport");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("bad port"), std::string::npos);
}

}  // namespace
