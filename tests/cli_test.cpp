// xroutectl CLI contract: unknown subcommands and missing arguments print
// the usage text and exit 2; help exits 0; documented verdict exit codes
// hold. Runs the real binary (XROUTECTL_PATH, injected by CMake).
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  ///< stdout + stderr, interleaved
};

CliResult run_cli(const std::string& args) {
  // Unique per process AND per call: ctest runs each test in its own
  // process, all sharing TempDir().
  static int invocation = 0;
  std::string capture = ::testing::TempDir() + "xroutectl_cli_" +
                        std::to_string(::getpid()) + "_" +
                        std::to_string(invocation++) + ".txt";
  std::string command =
      std::string(XROUTECTL_PATH) + " " + args + " > " + capture + " 2>&1";
  int raw = std::system(command.c_str());
  CliResult result;
  result.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  std::ifstream in(capture);
  std::ostringstream os;
  os << in.rdbuf();
  result.output = os.str();
  std::remove(capture.c_str());
  return result;
}

TEST(XroutectlCli, UnknownCommandPrintsUsageAndExitsTwo) {
  CliResult result = run_cli("frobnicate");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown command 'frobnicate'"),
            std::string::npos);
  EXPECT_NE(result.output.find("usage: xroutectl"), std::string::npos);
}

TEST(XroutectlCli, NoCommandPrintsUsageAndExitsTwo) {
  CliResult result = run_cli("");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("usage: xroutectl"), std::string::npos);
}

TEST(XroutectlCli, MissingArgumentsPrintUsageAndExitTwo) {
  for (const char* args : {"parse", "covers '/a'", "match", "serve",
                           "connect 127.0.0.1", "sub 127.0.0.1 1", "pub"}) {
    CliResult result = run_cli(args);
    EXPECT_EQ(result.exit_code, 2) << "args: " << args;
    EXPECT_NE(result.output.find("usage: xroutectl"), std::string::npos)
        << "args: " << args;
  }
}

TEST(XroutectlCli, HelpExitsZero) {
  CliResult result = run_cli("help");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("usage: xroutectl"), std::string::npos);
  EXPECT_NE(result.output.find("serve"), std::string::npos);
}

TEST(XroutectlCli, CoversVerdictExitCodes) {
  EXPECT_EQ(run_cli("covers '/a' '/a/b'").exit_code, 0);
  EXPECT_EQ(run_cli("covers '/a/b' '/a'").exit_code, 1);
}

TEST(XroutectlCli, ParseEchoesTheXpe) {
  CliResult result = run_cli("parse '/a/b'");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("/a/b"), std::string::npos);
}

TEST(XroutectlCli, ConnectFailsCleanlyWhenNoBrokerListens) {
  // Port 1 is essentially never bound; one dial, no retry, exit 1.
  CliResult result = run_cli("connect 127.0.0.1 1");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("no broker"), std::string::npos);
}

TEST(XroutectlCli, BadPortIsAUsageError) {
  CliResult result = run_cli("connect 127.0.0.1 notaport");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("bad port"), std::string::npos);
}

/// Writes `text` to a unique temp file and returns its path.
std::string write_temp(const std::string& tag, const std::string& text) {
  std::string path = ::testing::TempDir() + "xroutectl_cli_" + tag + "_" +
                     std::to_string(::getpid()) + ".txt";
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(XroutectlCli, ServeBrokerOptionErrorsAreUsageErrors) {
  std::string overlay = write_temp("overlay", "broker 0 127.0.0.1 45123\n");
  // Bad knob value, unknown knob, malformed --option, invalid combination:
  // all usage errors (exit 2) with the parser's message, before any socket
  // is opened.
  for (const char* args :
       {" 0 --threads zero", " 0 --threads 0", " 0 --option bogus=1",
        " 0 --option no-equals", " 0 --threads 4 --option shards=2"}) {
    CliResult result = run_cli("serve " + overlay + args);
    EXPECT_EQ(result.exit_code, 2) << "args: " << args;
    EXPECT_NE(result.output.find("usage: xroutectl"), std::string::npos)
        << "args: " << args;
  }
  std::remove(overlay.c_str());
}

TEST(XroutectlCli, OverlayOptionLinesAreValidatedAtParse) {
  std::string overlay = write_temp(
      "overlay_bad", "broker 0 127.0.0.1 45123\noption threads many\n");
  CliResult result = run_cli("serve " + overlay + " 0");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("overlay file line 2"), std::string::npos);
  std::remove(overlay.c_str());
}

TEST(XroutectlCli, FaultPlanOptionLinesAreValidated) {
  // A valid option line parses and runs; a bad one is a ParseError.
  std::string good = write_temp(
      "plan_good",
      "topology chain 2\nsubscribers 2\ndocuments 2\noption covering off\n");
  EXPECT_EQ(run_cli("faultsim " + good).exit_code, 0);
  std::string bad =
      write_temp("plan_bad", "topology chain 2\noption threads 4 extra\n");
  CliResult result = run_cli("faultsim " + bad);
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("option"), std::string::npos);
  // Parses fine, but the discrete-event simulator only runs sequential
  // brokers: a clear rejection, not UB or silent fallback.
  std::string threaded =
      write_temp("plan_threaded", "topology chain 2\noption threads 4\n");
  CliResult rejected = run_cli("faultsim " + threaded);
  EXPECT_EQ(rejected.exit_code, 2);
  EXPECT_NE(rejected.output.find("single-threaded"), std::string::npos);
  std::remove(good.c_str());
  std::remove(bad.c_str());
  std::remove(threaded.c_str());
}

}  // namespace
