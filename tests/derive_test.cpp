// Unit + property tests for advertisement derivation from DTDs
// (paper §3.1): shape of derived advertisements and the completeness
// contract (every conforming path matches some advertisement).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "adv/derive.hpp"
#include "dtd/parser.hpp"
#include "dtd/universe.hpp"
#include "match/adv_automaton.hpp"
#include "workload/dtd_corpus.hpp"

namespace xroute {
namespace {

std::set<std::string> adv_strings(const DerivedAdvertisements& d) {
  std::set<std::string> out;
  for (const Advertisement& a : d.advertisements) out.insert(a.to_string());
  return out;
}

/// Completeness oracle: every universe path accepted by some advertisement.
::testing::AssertionResult complete(const Dtd& dtd,
                                    const DerivedAdvertisements& derived,
                                    std::size_t depth) {
  PathUniverse::Options opts;
  opts.max_depth = depth;
  PathUniverse universe(dtd, opts);
  std::vector<AdvAutomaton> automata;
  for (const Advertisement& a : derived.advertisements) automata.emplace_back(a);
  for (const Path& p : universe.paths()) {
    bool matched = false;
    for (const AdvAutomaton& m : automata) {
      if (m.accepts_path(p)) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      return ::testing::AssertionFailure()
             << "path " << p.to_string() << " matches no advertisement";
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(Derive, NonRecursiveEnumeratesAllPaths) {
  Dtd dtd = parse_dtd(R"(
<!ELEMENT root (a, b?)>
<!ELEMENT a (c | d)>
<!ELEMENT b (c)*>
<!ELEMENT c EMPTY>
<!ELEMENT d (#PCDATA)>
)");
  auto derived = derive_advertisements(dtd);
  EXPECT_EQ(derived.repaired, 0u);
  EXPECT_FALSE(derived.truncated);
  EXPECT_EQ(adv_strings(derived),
            (std::set<std::string>{"/root/a/c", "/root/a/d", "/root/b",
                                   "/root/b/c"}));
  EXPECT_TRUE(complete(dtd, derived, 8));
}

TEST(Derive, SelfRecursionYieldsGroups) {
  Dtd dtd = parse_dtd(R"(
<!ELEMENT r (block)*>
<!ELEMENT block (p | block)*>
<!ELEMENT p (#PCDATA)>
)");
  auto derived = derive_advertisements(dtd);
  auto strings = adv_strings(derived);
  // Plain paths and the (block)+ recursive variants.
  EXPECT_TRUE(strings.count("/r"));
  EXPECT_TRUE(strings.count("/r/block"));
  EXPECT_TRUE(strings.count("/r/block/p"));
  bool has_recursive = std::any_of(
      derived.advertisements.begin(), derived.advertisements.end(),
      [](const Advertisement& a) { return !a.non_recursive(); });
  EXPECT_TRUE(has_recursive);
  EXPECT_EQ(derived.repaired, 0u);
  EXPECT_TRUE(complete(dtd, derived, 7));
}

TEST(Derive, MutualRecursionStaysComplete) {
  // A 2-cycle is not expressible as nested groups in this derivation; the
  // coarse fallback plus repair must still give a complete set.
  Dtd dtd = parse_dtd(R"(
<!ELEMENT r (x)*>
<!ELEMENT x (y | leaf)*>
<!ELEMENT y (x)*>
<!ELEMENT leaf EMPTY>
)");
  auto derived = derive_advertisements(dtd);
  EXPECT_TRUE(complete(dtd, derived, 8));
}

TEST(Derive, EmbeddedRecursion) {
  Dtd dtd = parse_dtd(R"(
<!ELEMENT r (a)*>
<!ELEMENT a (b | a)*>
<!ELEMENT b (c | b)*>
<!ELEMENT c EMPTY>
)");
  auto derived = derive_advertisements(dtd);
  EXPECT_TRUE(complete(dtd, derived, 8));
  // Some advertisement should nest or chain groups (a then b recursion).
  bool has_two_groups = false;
  for (const Advertisement& adv : derived.advertisements) {
    std::size_t groups = 0;
    for (const AdvNode& n : adv.nodes()) {
      if (n.kind == AdvNode::Kind::kGroup) ++groups;
    }
    if (groups >= 2 || (adv.shape() == Advertisement::Shape::kEmbeddedRecursive)) {
      has_two_groups = true;
    }
  }
  EXPECT_TRUE(has_two_groups);
}

TEST(Derive, TruncationCap) {
  Dtd dtd = news_dtd();
  DeriveOptions options;
  options.max_advertisements = 10;
  options.repair = false;
  auto derived = derive_advertisements(dtd, options);
  EXPECT_TRUE(derived.truncated);
  EXPECT_LE(derived.advertisements.size(), 10u);
}

TEST(DeriveCorpus, NewsIsRecursiveAndClean) {
  Dtd dtd = news_dtd();
  ElementGraph graph(dtd);
  EXPECT_TRUE(graph.is_recursive());
  auto derived = derive_advertisements(dtd);
  EXPECT_FALSE(derived.truncated);
  // The NEWS recursion is a clean self-loop: no repair needed.
  EXPECT_EQ(derived.repaired, 0u);
  EXPECT_TRUE(complete(dtd, derived, 10));
}

TEST(DeriveCorpus, PsdIsNonRecursive) {
  Dtd dtd = psd_dtd();
  ElementGraph graph(dtd);
  EXPECT_FALSE(graph.is_recursive());
  auto derived = derive_advertisements(dtd);
  EXPECT_EQ(derived.repaired, 0u);
  for (const Advertisement& a : derived.advertisements) {
    EXPECT_TRUE(a.non_recursive());
  }
  EXPECT_TRUE(complete(dtd, derived, 12));
}

TEST(DeriveCorpus, NewsAdvertisementSetMuchLargerThanPsd) {
  // The paper reports NITF deriving ~35x more advertisements than PSD;
  // the synthetic corpus preserves "well over an order of magnitude".
  auto news = derive_advertisements(news_dtd());
  auto psd = derive_advertisements(psd_dtd());
  EXPECT_GE(news.advertisements.size(), 10 * psd.advertisements.size())
      << "news=" << news.advertisements.size()
      << " psd=" << psd.advertisements.size();
  RecordProperty("news_advertisements",
                 static_cast<int>(news.advertisements.size()));
  RecordProperty("psd_advertisements",
                 static_cast<int>(psd.advertisements.size()));
}

}  // namespace
}  // namespace xroute
