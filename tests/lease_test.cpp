// Lease lifecycle units: the per-reactor LeaseManager timing wheel and
// the InterestIndex first/last bookkeeping that drives broker-side
// subscription refcounting. Pure and clockless — every timestamp is fed
// by the test, so renewal-vs-expiry races are exact, not sleeps.
#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "edge/interest_index.hpp"
#include "edge/lease_manager.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

using edge::InterestIndex;
using edge::LeaseManager;

// -- LeaseManager ------------------------------------------------------------

TEST(LeaseWheel, AcquireIsNewOnceAndRenewsAfter) {
  LeaseManager leases(100.0, 0.0);
  EXPECT_TRUE(leases.acquire(3, 7, 0.0));
  EXPECT_TRUE(leases.held(3, 7));
  EXPECT_DOUBLE_EQ(leases.deadline_ms(3, 7), 100.0);
  // Re-subscribe is a renewal, not a second lease.
  EXPECT_FALSE(leases.acquire(3, 7, 40.0));
  EXPECT_DOUBLE_EQ(leases.deadline_ms(3, 7), 140.0);
  EXPECT_EQ(leases.lease_count(), 1u);
  EXPECT_EQ(leases.session_lease_count(3), 1u);
}

TEST(LeaseWheel, RenewalRacingExpiryKeepsTheLease) {
  LeaseManager leases(100.0, 0.0);
  leases.acquire(1, 42, 0.0);
  // Renew just before the original deadline: the stale wheel entry parked
  // at t=100 must NOT expire the lease when its slot comes around.
  EXPECT_EQ(leases.renew_session(1, 90.0), 1u);
  EXPECT_TRUE(leases.expire(120.0).empty());
  EXPECT_TRUE(leases.held(1, 42));
  // No further renewal: the renewed deadline (190) lapses for real.
  std::vector<LeaseManager::Expired> lapsed = leases.expire(250.0);
  ASSERT_EQ(lapsed.size(), 1u);
  EXPECT_EQ(lapsed[0].session, 1);
  EXPECT_EQ(lapsed[0].xpe_uid, 42u);
  EXPECT_FALSE(leases.held(1, 42));
  EXPECT_EQ(leases.session_lease_count(1), 0u);
}

TEST(LeaseWheel, ExpiredLeaseReacquiresAsNew) {
  LeaseManager leases(50.0, 0.0);
  EXPECT_TRUE(leases.acquire(2, 9, 0.0));
  ASSERT_EQ(leases.expire(200.0).size(), 1u);
  // Expiry is not sticky: the same (session, xpe) acquires fresh, and the
  // caller gets the new-lease cue again.
  EXPECT_TRUE(leases.acquire(2, 9, 200.0));
  EXPECT_TRUE(leases.held(2, 9));
  // ... and nothing doubles: one lease, expiring once.
  EXPECT_TRUE(leases.expire(210.0).empty());
  EXPECT_EQ(leases.expire(400.0).size(), 1u);
  EXPECT_TRUE(leases.expire(600.0).empty());
}

TEST(LeaseWheel, ReleaseAndReleaseSession) {
  LeaseManager leases(100.0, 0.0);
  leases.acquire(5, 1, 0.0);
  leases.acquire(5, 2, 0.0);
  leases.acquire(6, 1, 0.0);
  EXPECT_TRUE(leases.release(5, 1));
  EXPECT_FALSE(leases.release(5, 1));  // already gone
  std::vector<std::uint32_t> held = leases.release_session(5);
  EXPECT_EQ(held, std::vector<std::uint32_t>{2});
  EXPECT_EQ(leases.session_lease_count(5), 0u);
  EXPECT_EQ(leases.session_lease_count(6), 1u);
  // Released leases never surface from the wheel; only 6's lapses.
  std::vector<LeaseManager::Expired> lapsed = leases.expire(500.0);
  ASSERT_EQ(lapsed.size(), 1u);
  EXPECT_EQ(lapsed[0].session, 6);
  EXPECT_FALSE(leases.held(5, 2));
  EXPECT_FALSE(leases.held(6, 1));
}

TEST(LeaseWheel, ClockJumpExpiresExactlyOnce) {
  LeaseManager leases(100.0, 0.0);
  leases.acquire(1, 1, 0.0);
  leases.acquire(2, 2, 0.0);
  // A jump far beyond a full wheel revolution must expire everything
  // exactly once and leave the wheel usable, not spin it per-slot.
  std::vector<LeaseManager::Expired> lapsed = leases.expire(1e9);
  EXPECT_EQ(lapsed.size(), 2u);
  EXPECT_TRUE(leases.expire(1e9 + 50.0).empty());
  EXPECT_TRUE(leases.acquire(1, 1, 1e9 + 50.0));
  EXPECT_TRUE(leases.expire(1e9 + 60.0).empty());
  EXPECT_EQ(leases.expire(1e9 + 500.0).size(), 1u);
}

TEST(LeaseWheel, LongTtlNeverExpiresEarlyAndLapsesWithinOneSlot) {
  // Wide TTL: whatever slot the entry parks in, it must never expire
  // before its deadline, and it must lapse within one slot width after
  // it (the wheel scans a slot once the clock passes the slot's end, so
  // expiry lateness is bounded by slot_ms = ttl * 2 / 64).
  constexpr double kTtl = 100000.0;
  constexpr double kSlot = kTtl * 2.0 / 64.0;
  LeaseManager leases(kTtl, 0.0);
  leases.acquire(1, 1, 0.0);
  for (double t = 1000.0; t < kTtl; t += 7000.0) {
    EXPECT_TRUE(leases.expire(t).empty()) << "premature expiry at t=" << t;
  }
  EXPECT_EQ(leases.expire(kTtl + kSlot + 1.0).size(), 1u);
  EXPECT_FALSE(leases.held(1, 1));
}

// -- InterestIndex -----------------------------------------------------------

TEST(LeaseInterest, FirstAddAndLastRemoveAreTheOnlySignals) {
  InterestIndex index;
  Xpe xpe = parse_xpe("/stock/quote");
  EXPECT_TRUE(index.add(1, xpe));    // reactor's first interest
  EXPECT_FALSE(index.add(2, xpe));   // piggybacks
  EXPECT_FALSE(index.add(2, xpe));   // idempotent per session
  EXPECT_EQ(index.session_count(xpe.uid()), 2u);
  EXPECT_FALSE(index.remove(1, xpe.uid()));
  EXPECT_TRUE(index.remove(2, xpe.uid()));   // reactor's last interest
  EXPECT_FALSE(index.remove(2, xpe.uid()));  // already gone
  EXPECT_EQ(index.distinct_xpes(), 0u);
}

TEST(LeaseInterest, ResolveDeduplicatesSessionsAcrossMatchingXpes) {
  InterestIndex index;
  // Session 1 holds two Xpes that both match /a/b; it must appear once.
  index.add(1, parse_xpe("/a"));
  index.add(1, parse_xpe("/a/b"));
  index.add(2, parse_xpe("/a/b"));
  index.add(3, parse_xpe("//c"));
  std::vector<int> out;
  index.resolve(parse_path("/a/b"), &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  out.clear();
  index.resolve(parse_path("/q"), &out);
  EXPECT_TRUE(out.empty());
}

TEST(LeaseInterest, XpeLookupSurvivesUntilLastRemove) {
  InterestIndex index;
  Xpe xpe = parse_xpe("/d//e");
  index.add(1, xpe);
  index.add(2, xpe);
  index.remove(1, xpe.uid());
  ASSERT_NE(index.xpe(xpe.uid()), nullptr);
  EXPECT_EQ(index.xpe(xpe.uid())->uid(), xpe.uid());
  index.remove(2, xpe.uid());
  EXPECT_EQ(index.xpe(xpe.uid()), nullptr);
}

}  // namespace
}  // namespace xroute
