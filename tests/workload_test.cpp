// Unit tests for the workload generators and corpus DTDs.
#include <gtest/gtest.h>

#include <set>

#include "dtd/graph.hpp"
#include "dtd/universe.hpp"
#include "match/pub_match.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/xml_gen.hpp"
#include "workload/xpath_gen.hpp"
#include "xml/paths.hpp"

namespace xroute {
namespace {

TEST(CorpusDtd, ParsesAndIsClosed) {
  for (const char* name : {"news", "psd"}) {
    Dtd dtd = corpus_dtd(name);
    EXPECT_GT(dtd.size(), 20u) << name;
    EXPECT_TRUE(dtd.undeclared_references().empty()) << name;
  }
  EXPECT_THROW(corpus_dtd("nope"), std::invalid_argument);
}

TEST(CorpusDtd, StructuralProperties) {
  ElementGraph news(news_dtd());
  EXPECT_TRUE(news.is_recursive());
  EXPECT_TRUE(news.is_cyclic("block"));
  ElementGraph psd(psd_dtd());
  EXPECT_FALSE(psd.is_recursive());
}

TEST(CorpusDtd, EveryElementHasFiniteExpansion) {
  for (const char* name : {"news", "psd"}) {
    Dtd dtd = corpus_dtd(name);
    for (const std::string& element : dtd.declaration_order()) {
      EXPECT_NO_THROW({
        std::size_t d = minimal_depth(dtd, element);
        EXPECT_GE(d, 1u);
        EXPECT_LE(d, 5u) << element;  // generator cap headroom
      }) << name << "/" << element;
    }
  }
}

TEST(XpathGen, GeneratesDistinctBoundedQueries) {
  XpathGenOptions options;
  options.count = 500;
  options.max_length = 10;
  options.seed = 7;
  auto xpes = generate_xpaths(news_dtd(), options);
  ASSERT_EQ(xpes.size(), 500u);
  std::set<std::string> seen;
  for (const Xpe& x : xpes) {
    EXPECT_GE(x.size(), options.min_length);
    EXPECT_LE(x.size(), options.max_length);
    EXPECT_TRUE(seen.insert(x.to_string()).second) << x.to_string();
  }
}

TEST(XpathGen, Reproducible) {
  XpathGenOptions options;
  options.count = 50;
  options.seed = 99;
  auto a = generate_xpaths(psd_dtd(), options);
  auto b = generate_xpaths(psd_dtd(), options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(XpathGen, KnobsControlOperators) {
  XpathGenOptions none;
  none.count = 200;
  none.wildcard_prob = 0.0;
  none.descendant_prob = 0.0;
  none.relative_prob = 0.0;
  none.seed = 3;
  for (const Xpe& x : generate_xpaths(news_dtd(), none)) {
    EXPECT_FALSE(x.has_wildcard());
    EXPECT_FALSE(x.has_descendant());
    EXPECT_TRUE(x.anchored());
  }
  XpathGenOptions lots = none;
  lots.wildcard_prob = 1.0;
  for (const Xpe& x : generate_xpaths(news_dtd(), lots)) {
    EXPECT_TRUE(x.has_wildcard());
  }
}

TEST(XpathGen, QueriesAreSatisfiableByTheDtd) {
  // Wildcard/descendant-free absolute queries follow the element graph, so
  // some universe path must match each of them.
  XpathGenOptions options;
  options.count = 150;
  options.wildcard_prob = 0.0;
  options.descendant_prob = 0.0;
  options.relative_prob = 0.0;
  options.seed = 11;
  Dtd dtd = psd_dtd();
  PathUniverse universe(dtd);
  for (const Xpe& x : generate_xpaths(dtd, options)) {
    EXPECT_GT(universe.count_matching(x), 0u) << x.to_string();
  }
}

TEST(XpathGen, CoveringRateMovesWithGenerality) {
  XpathGenOptions narrow;
  narrow.count = 800;
  narrow.wildcard_prob = 0.02;
  narrow.descendant_prob = 0.02;
  narrow.seed = 21;
  XpathGenOptions broad = narrow;
  broad.wildcard_prob = 0.45;
  broad.descendant_prob = 0.45;

  double low = covering_rate(generate_xpaths(psd_dtd(), narrow));
  double high = covering_rate(generate_xpaths(psd_dtd(), broad));
  EXPECT_LT(low, high);
  EXPECT_GT(high, 0.5);
}

TEST(XmlGen, GeneratesConformingishDocuments) {
  Dtd dtd = news_dtd();
  Rng rng(5);
  XmlGenOptions options;
  XmlDocument doc = generate_document(dtd, rng, options);
  EXPECT_EQ(doc.root().name, "news");
  // Every element used is declared.
  std::vector<const XmlNode*> stack{&doc.root()};
  while (!stack.empty()) {
    const XmlNode* node = stack.back();
    stack.pop_back();
    EXPECT_TRUE(dtd.has_element(node->name)) << node->name;
    for (const XmlNode& c : node->children) stack.push_back(&c);
  }
}

TEST(XmlGen, RespectsDepthCapWithHeadroom) {
  Dtd dtd = news_dtd();
  Rng rng(6);
  XmlGenOptions options;
  options.max_levels = 10;
  for (int i = 0; i < 20; ++i) {
    XmlDocument doc = generate_document(dtd, rng, options);
    // At the cap the generator switches to minimal expansions; the
    // overshoot is bounded by the deepest minimal expansion.
    EXPECT_LE(doc.root().depth(), options.max_levels + 4);
  }
}

TEST(XmlGen, TargetBytesReached) {
  Dtd dtd = psd_dtd();
  Rng rng(7);
  for (std::size_t target : {2048u, 10240u, 20480u}) {
    XmlGenOptions options;
    options.target_bytes = target;
    XmlDocument doc = generate_document(dtd, rng, options);
    EXPECT_GE(doc.byte_size(), target);
    EXPECT_LE(doc.byte_size(), target + 4096);
  }
}

TEST(XmlGen, ExtractedPathsMatchGeneratedAdvertisements) {
  // Ties generator and DTD together: document paths live in the universe.
  Dtd dtd = psd_dtd();
  PathUniverse::Options uopts;
  uopts.max_depth = 16;
  PathUniverse universe(dtd, uopts);
  std::set<std::vector<std::string>> universe_set;
  for (const Path& p : universe.paths()) universe_set.insert(p.elements);
  Rng rng(8);
  for (int i = 0; i < 10; ++i) {
    XmlDocument doc = generate_document(dtd, rng, {});
    // Extracted paths carry attribute/text annotations; structurally they
    // must all live in the universe.
    for (const Path& p : extract_paths(doc)) {
      EXPECT_TRUE(universe_set.count(p.elements)) << p.to_string();
    }
  }
}

TEST(XmlGen, Reproducible) {
  Dtd dtd = news_dtd();
  Rng r1(42), r2(42);
  EXPECT_EQ(generate_document(dtd, r1, {}).serialize(),
            generate_document(dtd, r2, {}).serialize());
}

}  // namespace
}  // namespace xroute
