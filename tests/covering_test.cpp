// Unit tests for the covering algorithms (paper §4.2), including the
// paper's worked examples.
#include <gtest/gtest.h>

#include "match/covering.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

bool C(const char* s1, const char* s2) {
  return covers(parse_xpe(s1), parse_xpe(s2));
}

TEST(AbsSimCovTest, PrefixAndWildcards) {
  EXPECT_TRUE(abs_sim_cov(parse_xpe("/a/b"), parse_xpe("/a/b/c")));
  EXPECT_TRUE(abs_sim_cov(parse_xpe("/a/*"), parse_xpe("/a/b")));
  EXPECT_TRUE(abs_sim_cov(parse_xpe("/*/b"), parse_xpe("/a/b/c")));
  EXPECT_FALSE(abs_sim_cov(parse_xpe("/a/b/c"), parse_xpe("/a/b")));
  EXPECT_FALSE(abs_sim_cov(parse_xpe("/a/b"), parse_xpe("/a/c")));
  // A concrete name does not cover '*'.
  EXPECT_FALSE(abs_sim_cov(parse_xpe("/a/b"), parse_xpe("/a/*")));
  EXPECT_TRUE(abs_sim_cov(parse_xpe("/a/*"), parse_xpe("/a/*/c")));
  EXPECT_TRUE(abs_sim_cov(parse_xpe("/a"), parse_xpe("/a")));
}

TEST(RelSimCovTest, WindowSearch) {
  EXPECT_TRUE(rel_sim_cov(parse_xpe("b/c"), parse_xpe("/a/b/c")));
  EXPECT_TRUE(rel_sim_cov(parse_xpe("c"), parse_xpe("/a/b/c/d")));
  EXPECT_FALSE(rel_sim_cov(parse_xpe("c/b"), parse_xpe("/a/b/c")));
  EXPECT_TRUE(rel_sim_cov(parse_xpe("a"), parse_xpe("a/b")));
  // Coverer wildcard covers covered-side concrete and wildcard positions.
  EXPECT_TRUE(rel_sim_cov(parse_xpe("*/c"), parse_xpe("/a/*/c")));
  // Covered-side wildcard is NOT covered by a concrete name.
  EXPECT_FALSE(rel_sim_cov(parse_xpe("b/c"), parse_xpe("/a/*/c")));
}

TEST(RelSimCovTest, KmpAgreesWithNaive) {
  const char* coverers[] = {"b/c", "c", "a/b", "b/b", "c/a"};
  const char* covered[] = {"/a/b/c", "b/c/a", "/a/*/c", "/b/b/b", "c/a"};
  for (const char* s1 : coverers) {
    for (const char* s2 : covered) {
      EXPECT_EQ(rel_sim_cov(parse_xpe(s1), parse_xpe(s2), SearchStrategy::kNaive),
                rel_sim_cov(parse_xpe(s1), parse_xpe(s2),
                            SearchStrategy::kKmpWhenSound))
          << s1 << " vs " << s2;
    }
  }
}

TEST(DesCovTest, PaperExampleOne) {
  // s1 = /*/a//*/c covers s2 = /a/a/*//c/e/c/d.
  EXPECT_TRUE(des_cov(parse_xpe("/*/a//*/c"), parse_xpe("/a/a/*//c/e/c/d")));
}

TEST(DesCovTest, PaperExampleTwo) {
  // s1 = /*/a//*/c does NOT cover s2 = /a/a/*//c/b/d.
  EXPECT_FALSE(des_cov(parse_xpe("/*/a//*/c"), parse_xpe("/a/a/*//c/b/d")));
}

TEST(DesCovTest, PaperSpecialCaseTrailingWildcardCrossesBoundary) {
  // s1 = /a/*//*/d covers s2 = /a//b/c/d: the '*' may absorb the '//'.
  EXPECT_TRUE(des_cov(parse_xpe("/a/*//*/d"), parse_xpe("/a//b/c/d")));
}

TEST(DesCovTest, ConcreteTailMayNotCrossBoundary) {
  // A segment with a concrete element after the boundary cannot cross:
  // */c does not cover *//c (paper: "refers to a smaller matching set").
  EXPECT_FALSE(des_cov(parse_xpe("/a/*/c"), parse_xpe("/a/*//c")));
  EXPECT_TRUE(des_cov(parse_xpe("/a/*//c"), parse_xpe("/a/*/c")));
}

TEST(DesCovTest, DescendantGeneralisesChild) {
  EXPECT_TRUE(C("/a//b", "/a/b"));
  EXPECT_TRUE(C("/a//b", "/a/x/b"));
  EXPECT_FALSE(C("/a/b", "/a//b"));
  EXPECT_TRUE(C("//b", "/a/b"));
  EXPECT_TRUE(C("/a//c", "/a/b//c"));
}

TEST(CoversDispatch, AnchoredNeverCoversFloating) {
  EXPECT_FALSE(C("/a", "a"));
  EXPECT_FALSE(C("/a/b", "a/b"));
  EXPECT_FALSE(C("/a//b", "a//b"));
  // But floating covers anchored when the window fits.
  EXPECT_TRUE(C("a", "/a"));
  EXPECT_TRUE(C("b/c", "/a/b/c"));
  EXPECT_TRUE(C("a/b", "//a/b"));
}

TEST(CoversDispatch, SelfCovering) {
  for (const char* s : {"/a/b", "a/b", "/a//b/*", "*", "//x"}) {
    EXPECT_TRUE(C(s, s)) << s;
  }
}

TEST(CoversDispatch, TransitiveChain) {
  // /a covers /a/b covers /a/b/c; covering must hold across the chain.
  EXPECT_TRUE(C("/a", "/a/b"));
  EXPECT_TRUE(C("/a/b", "/a/b/c"));
  EXPECT_TRUE(C("/a", "/a/b/c"));
}

TEST(CoversDispatch, SubscriptionTreeFigureRelations) {
  // Relations visible in the paper's Fig. 4 subscription tree.
  EXPECT_TRUE(C("/a", "/a/b"));
  EXPECT_TRUE(C("/a/b", "/a/b/a"));
  EXPECT_TRUE(C("/a", "/a/c/d"));
  EXPECT_TRUE(C("/*/b", "/a/b"));     // super pointer source
  EXPECT_TRUE(C("/*/b", "/*/b//c"));
  EXPECT_TRUE(C("/b", "/b/d/a"));
  // And some that must NOT hold.
  EXPECT_FALSE(C("/a/b", "/a/c"));
  EXPECT_FALSE(C("/b", "/a/b"));
  EXPECT_FALSE(C("d/a", "/a"));
}

TEST(CoversDispatch, MergerCoversOriginals) {
  // The merging rules' outputs must cover their inputs (paper §4.3).
  EXPECT_TRUE(C("a/*/c/*", "a/*/c/d"));
  EXPECT_TRUE(C("a/*/c/*", "a/*/c/e"));
  EXPECT_TRUE(C("/a//c/*/*", "/a/c/*/*"));
  EXPECT_TRUE(C("/a//c/*/*", "/a//c/*/c"));
  EXPECT_TRUE(C("/a//d", "/a/b/c/d"));
  EXPECT_TRUE(C("/a//d", "/a/x/d"));
}

TEST(AdvCoversTest, EqualLengthOnly) {
  EXPECT_TRUE(adv_covers({"a", "*"}, {"a", "b"}));
  EXPECT_TRUE(adv_covers({"*", "*"}, {"a", "b"}));
  EXPECT_FALSE(adv_covers({"a"}, {"a", "b"}));  // unequal length
  EXPECT_FALSE(adv_covers({"a", "b"}, {"a", "*"}));
  EXPECT_TRUE(adv_covers({"a", "b"}, {"a", "b"}));
}

}  // namespace
}  // namespace xroute
