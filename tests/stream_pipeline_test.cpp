// End-to-end differential for the streaming publication pipeline: a
// broker fed publications decomposed by the streaming extractor must emit
// a forward stream byte-identical to one fed the tree pipeline's
// decomposition of the same documents — at every thread count — and the
// frame-reuse path (Inbound::frame -> ForwardSink::on_forward_pub) must
// put exactly the bytes on the wire that re-encoding would. The wire
// section mirrors the codec suite's truncation/garbage matrix for the
// borrowed Decoded::raw span.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "router/broker.hpp"
#include "util/rng.hpp"
#include "wire/codec.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/set_builder.hpp"
#include "workload/xml_gen.hpp"
#include "xml/parser.hpp"
#include "xml/paths.hpp"
#include "xml/stream_parser.hpp"

namespace xroute {
namespace {

constexpr IfaceId kNeighbors[] = {IfaceId{1}, IfaceId{2}, IfaceId{3}};
constexpr IfaceId kClients[] = {IfaceId{10}, IfaceId{11}};

/// Serialises every sink event into one byte stream (tag, interface,
/// wire-encoded message) — equal streams mean identical routing, order
/// included.
struct RecordingSink : ForwardSink {
  std::vector<std::uint8_t> bytes;

  void record(std::uint8_t tag, IfaceId iface, const Message& msg) {
    bytes.push_back(tag);
    std::uint32_t id = static_cast<std::uint32_t>(iface.value());
    for (int shift = 0; shift < 32; shift += 8) {
      bytes.push_back(static_cast<std::uint8_t>(id >> shift));
    }
    std::vector<std::uint8_t> frame = wire::encode_frame(msg);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  void on_forward(IfaceId iface, const Message& msg) override {
    record(0x01, iface, msg);
  }
  void on_local_delivery(IfaceId client, const Message& msg) override {
    record(0x02, client, msg);
  }
  void on_suppressed(IfaceId client, const Message& msg) override {
    record(0x03, client, msg);
  }
};

/// What a transport puts on the wire: reused frame bytes where offered,
/// re-encoded bytes otherwise.
struct WireSink : ForwardSink {
  std::vector<std::pair<IfaceId, std::vector<std::uint8_t>>> sent;
  std::size_t frames_reused = 0;

  void on_forward(IfaceId iface, const Message& msg) override {
    sent.emplace_back(iface, wire::encode_frame(msg));
  }
  void on_forward_pub(IfaceId iface, const Message& msg,
                      std::span<const std::uint8_t> frame) override {
    if (frame.empty()) {
      on_forward(iface, msg);
    } else {
      ++frames_reused;
      sent.emplace_back(iface,
                        std::vector<std::uint8_t>(frame.begin(), frame.end()));
    }
  }
  void on_local_delivery_pub(IfaceId iface, const Message& msg,
                             std::span<const std::uint8_t> frame) override {
    on_forward_pub(iface, msg, frame);
  }
};

std::vector<std::string> generate_corpus(std::uint64_t seed,
                                         std::size_t docs) {
  Dtd dtd = corpus_dtd("news");
  Rng rng(seed);
  std::vector<std::string> texts;
  for (std::size_t i = 0; i < docs; ++i) {
    texts.push_back(generate_document(dtd, rng).serialize());
  }
  return texts;
}

std::vector<Message> to_publications(const std::vector<std::string>& texts,
                                     bool streaming) {
  std::vector<Message> out;
  std::uint64_t doc_id = 1;
  for (const std::string& text : texts) {
    std::vector<Path> paths = streaming
                                  ? stream_extract_paths(text)
                                  : extract_paths(parse_xml(text));
    std::uint32_t path_id = 0;
    for (Path& path : paths) {
      PublishMsg msg;
      msg.path = std::move(path);
      msg.doc_id = doc_id;
      msg.path_id = path_id++;
      msg.doc_bytes = text.size();
      msg.paths_in_doc = static_cast<std::uint32_t>(paths.size());
      out.emplace_back(msg);
    }
    ++doc_id;
  }
  return out;
}

Broker make_broker(std::size_t threads, std::uint64_t seed) {
  Broker::Config config;
  config.use_advertisements = false;
  config.match_threads = threads;
  Broker broker(0, config);
  for (IfaceId n : kNeighbors) broker.add_neighbor(n);
  for (IfaceId c : kClients) broker.add_client(c);

  Dtd dtd = corpus_dtd("news");
  CoverSetOptions opts;
  opts.count = 150;
  opts.target_rate = 0.6;
  opts.seed = seed;
  CoverSet set = build_covering_set(dtd, opts);
  RecordingSink setup;
  std::size_t i = 0;
  for (const Xpe& xpe : set.xpes) {
    IfaceId from = (i % 3 == 0) ? kClients[i % 2] : kNeighbors[i % 3];
    broker.handle(from, Message::subscribe(xpe), setup);
    ++i;
  }
  return broker;
}

std::vector<std::uint8_t> replay(const std::vector<Message>& pubs,
                                 std::size_t threads, std::uint64_t seed) {
  Broker broker = make_broker(threads, seed);
  RecordingSink sink;
  for (const Message& msg : pubs) {
    broker.handle(IfaceId{2}, msg, sink);
  }
  return sink.bytes;
}

TEST(StreamPipeline, ForwardStreamMatchesTreePipelineAtEveryThreadCount) {
  const std::uint64_t seed = 42;
  std::vector<std::string> texts = generate_corpus(seed, 24);
  std::vector<Message> tree_pubs = to_publications(texts, /*streaming=*/false);
  std::vector<Message> stream_pubs =
      to_publications(texts, /*streaming=*/true);
  ASSERT_FALSE(tree_pubs.empty());
  ASSERT_EQ(tree_pubs.size(), stream_pubs.size());

  std::vector<std::uint8_t> reference = replay(tree_pubs, 1, seed);
  ASSERT_FALSE(reference.empty());
  for (std::size_t threads : {1, 2, 4, 8}) {
    EXPECT_EQ(replay(stream_pubs, threads, seed), reference)
        << "streaming pipeline at " << threads << " thread(s)";
    EXPECT_EQ(replay(tree_pubs, threads, seed), reference)
        << "tree pipeline at " << threads << " thread(s)";
  }
}

TEST(StreamPipeline, ReusedFramesAreByteIdenticalToReencoding) {
  const std::uint64_t seed = 7;
  std::vector<std::string> texts = generate_corpus(seed, 12);
  std::vector<Message> pubs = to_publications(texts, /*streaming=*/true);
  std::vector<std::vector<std::uint8_t>> frames;
  for (const Message& msg : pubs) frames.push_back(wire::encode_frame(msg));

  for (std::size_t threads : {1, 4}) {
    // Reference: the frameless path re-encodes every forward.
    Broker reference_broker = make_broker(threads, seed);
    WireSink reference;
    {
      std::vector<Broker::Inbound> batch;
      for (const Message& msg : pubs) {
        batch.push_back(Broker::Inbound{IfaceId{2}, &msg});
      }
      reference_broker.handle_batch(batch, reference);
    }
    EXPECT_EQ(reference.frames_reused, 0u);

    // Frame-carrying inbound: the sink must see the exact same bytes,
    // now reused instead of re-encoded.
    Broker broker = make_broker(threads, seed);
    WireSink sink;
    {
      std::vector<Broker::Inbound> batch;
      for (std::size_t i = 0; i < pubs.size(); ++i) {
        batch.push_back(Broker::Inbound{IfaceId{2}, &pubs[i], frames[i]});
      }
      broker.handle_batch(batch, sink);
    }
    ASSERT_FALSE(sink.sent.empty());
    EXPECT_EQ(sink.frames_reused, sink.sent.size());
    ASSERT_EQ(sink.sent.size(), reference.sent.size());
    for (std::size_t i = 0; i < sink.sent.size(); ++i) {
      EXPECT_EQ(sink.sent[i].first, reference.sent[i].first);
      EXPECT_EQ(sink.sent[i].second, reference.sent[i].second)
          << "frame " << i << " at " << threads << " thread(s)";
    }
  }
}

// ---- Decoded::raw under the codec suite's truncation/garbage matrix ----

Message sample_publication() {
  PublishMsg msg;
  msg.path = parse_path("/news/europe/story");
  msg.doc_id = 99;
  msg.path_id = 1;
  return Message{msg};
}

TEST(StreamPipelineWire, RawSpanCoversExactlyTheFrameBytes) {
  std::vector<std::uint8_t> frame = wire::encode_frame(sample_publication());
  wire::Decoded decoded = wire::decode_frame(frame);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.raw.size(), frame.size());
  EXPECT_EQ(decoded.raw.data(), frame.data());  // borrowed, not copied
  EXPECT_TRUE(std::equal(decoded.raw.begin(), decoded.raw.end(),
                         frame.begin()));
}

TEST(StreamPipelineWire, TruncationAtEveryBoundaryLeavesRawEmpty) {
  std::vector<std::uint8_t> frame = wire::encode_frame(sample_publication());
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    wire::Decoded decoded = wire::decode_frame(frame.data(), cut);
    EXPECT_NE(decoded.status, wire::DecodeStatus::kOk) << "cut " << cut;
    EXPECT_TRUE(decoded.raw.empty()) << "cut " << cut;
  }
}

TEST(StreamPipelineWire, GarbageAndCorruptionLeaveRawEmpty) {
  std::vector<std::uint8_t> frame = wire::encode_frame(sample_publication());
  // Corrupt each header byte in turn (magic, version, kind).
  for (std::size_t i = 0; i < 4; ++i) {
    std::vector<std::uint8_t> bad = frame;
    bad[i] ^= 0xFF;
    wire::Decoded decoded = wire::decode_frame(bad);
    EXPECT_NE(decoded.status, wire::DecodeStatus::kOk) << "byte " << i;
    EXPECT_TRUE(decoded.raw.empty()) << "byte " << i;
  }
  const std::uint8_t junk[] = {0xDE, 0xAD, 0xBE, 0xEF, 0x00};
  wire::Decoded decoded = wire::decode_frame(junk, sizeof junk);
  EXPECT_NE(decoded.status, wire::DecodeStatus::kOk);
  EXPECT_TRUE(decoded.raw.empty());
}

TEST(StreamPipelineWire, TrailingBytesStillExposeTheFramePrefix) {
  std::vector<std::uint8_t> frame = wire::encode_frame(sample_publication());
  std::vector<std::uint8_t> padded = frame;
  padded.push_back(0x55);
  wire::Decoded decoded = wire::decode_frame(padded);
  EXPECT_EQ(decoded.status, wire::DecodeStatus::kTrailingBytes);
  ASSERT_EQ(decoded.consumed, frame.size());
  ASSERT_EQ(decoded.raw.size(), frame.size());
  EXPECT_TRUE(std::equal(decoded.raw.begin(), decoded.raw.end(),
                         frame.begin()));
}

TEST(StreamPipelineWire, FrameDecoderRawIsValidUntilNextFeed) {
  std::vector<std::uint8_t> a = wire::encode_frame(sample_publication());
  std::vector<std::uint8_t> b = wire::encode_frame(Message::sync_request());
  wire::FrameDecoder decoder;
  decoder.feed(a);
  decoder.feed(b);
  wire::Decoded first = decoder.next();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(std::equal(first.raw.begin(), first.raw.end(), a.begin()));
  // next() only advances the read offset: the first frame's span must
  // still be intact while the second is peeled off.
  wire::Decoded second = decoder.next();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(std::equal(first.raw.begin(), first.raw.end(), a.begin()));
  EXPECT_TRUE(std::equal(second.raw.begin(), second.raw.end(), b.begin()));
  EXPECT_EQ(decoder.next().status, wire::DecodeStatus::kNeedMore);
}

}  // namespace
}  // namespace xroute
