// Tests for broker snapshot & restore.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "dtd/parser.hpp"
#include "dtd/universe.hpp"
#include "router/snapshot.hpp"
#include "util/error.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

Xpe X(const char* s) { return parse_xpe(s); }

constexpr IfaceId kLeft{1}, kRight{2}, kClient{10};

Broker make_broker(Broker::Config config = {}) {
  Broker broker(0, config);
  broker.add_neighbor(kLeft);
  broker.add_neighbor(kRight);
  broker.add_client(kClient);
  return broker;
}

Message pub(const char* path) {
  static std::uint64_t next_doc_id = 1;
  PublishMsg msg;
  msg.path = parse_path(path);
  msg.doc_id = next_doc_id++;  // distinct: brokers deduplicate repeats
  return Message{msg};
}

/// Builds a broker with representative state: advertisements, covered and
/// covering subscriptions, a merger, client originals, forwarding records.
Broker populated_broker() {
  Broker broker = make_broker();
  broker.handle(kLeft,
                Message::advertise(Advertisement::from_elements({"a", "b"}), 5));
  broker.handle(kLeft, Message::advertise(
                           parse_advertisement("/a(/b)+/c"), 5));
  broker.handle(kClient, Message::subscribe(X("/a")));
  broker.handle(kClient, Message::subscribe(X("/a/b")));  // covered
  broker.handle(kRight, Message::subscribe(X("//c[@k='1']")));
  return broker;
}

TEST(Snapshot, RoundTripPreservesRouting) {
  Broker original = populated_broker();
  std::string snapshot = snapshot_to_string(original);

  Broker restored = make_broker();
  snapshot_from_string(restored, snapshot);

  EXPECT_EQ(restored.srt_size(), original.srt_size());
  EXPECT_EQ(restored.prt_size(), original.prt_size());

  // Identical routing decisions after restore.
  for (const char* path : {"/a/b/c", "/a/x", "/q"}) {
    auto before = original.handle(kLeft, pub(path));
    auto after = restored.handle(kLeft, pub(path));
    std::multiset<IfaceId> b_targets, a_targets;
    for (const auto& f : before.forwards) b_targets.insert(f.interface);
    for (const auto& f : after.forwards) a_targets.insert(f.interface);
    EXPECT_EQ(b_targets, a_targets) << path;
    EXPECT_EQ(before.deliveries, after.deliveries) << path;
  }

  // And re-snapshotting yields the same records (ordering may differ:
  // tree placement and hash iteration are not canonicalised).
  auto lines = [](const std::string& text) {
    std::multiset<std::string> out;
    std::istringstream is(text);
    for (std::string line; std::getline(is, line);) out.insert(line);
    return out;
  };
  EXPECT_EQ(lines(snapshot_to_string(restored)), lines(snapshot));
}

TEST(Snapshot, PreservesCoveringStructure) {
  Broker original = populated_broker();
  Broker restored = make_broker();
  snapshot_from_string(restored, snapshot_to_string(original));

  // The covered subscription stays covered: a duplicate subscribe of the
  // coverer is not forwarded again; a new covered one is absorbed.
  auto r = restored.handle(kClient, Message::subscribe(X("/a/b/c")));
  bool forwarded = false;
  for (const auto& f : r.forwards) {
    if (f.message.type() == MessageType::kSubscribe) forwarded = true;
  }
  EXPECT_FALSE(forwarded);
}

TEST(Snapshot, PreservesMergers) {
  Dtd dtd = parse_dtd(R"(
<!ELEMENT r (x)+>
<!ELEMENT x (a | b)>
<!ELEMENT a EMPTY><!ELEMENT b EMPTY>
)");
  PathUniverse universe(dtd);
  Broker::Config config;
  config.use_advertisements = false;
  config.merging_enabled = true;
  config.merge_universe = &universe;
  config.merge_interval = 2;
  Broker original = make_broker(config);
  original.handle(kClient, Message::subscribe(X("/r/x/a")));
  original.handle(kClient, Message::subscribe(X("/r/x/b")));
  ASSERT_EQ(original.merges_applied(), 1u);

  Broker restored = make_broker(config);
  snapshot_from_string(restored, snapshot_to_string(original));

  // The merger (and its originals for edge exactness) survive: a pub for
  // an unsubscribed sibling is suppressed, not delivered.
  auto r = restored.handle(kLeft, pub("/r/x/a"));
  EXPECT_EQ(r.deliveries, 1u);
  auto r2 = restored.handle(kLeft, pub("/r/x/b"));
  EXPECT_EQ(r2.deliveries, 1u);
}

TEST(Snapshot, MergingRoundTripForwardingBitIdentical) {
  Dtd dtd = parse_dtd(R"(
<!ELEMENT r (x)+>
<!ELEMENT x (a | b)>
<!ELEMENT a EMPTY><!ELEMENT b EMPTY>
)");
  PathUniverse universe(dtd);
  Broker::Config config;
  config.use_advertisements = false;
  config.merging_enabled = true;
  config.merge_universe = &universe;
  config.merge_interval = 2;
  Broker original = make_broker(config);
  // Client originals on two interfaces plus a neighbour subscription, so
  // the snapshot carries mergers, client tables and forwarding records.
  original.handle(kClient, Message::subscribe(X("/r/x/a")));
  original.handle(kClient, Message::subscribe(X("/r/x/b")));
  original.handle(kRight, Message::subscribe(X("/r/x")));
  ASSERT_GE(original.merges_applied(), 1u);
  ASSERT_FALSE(original.client_tables().empty());

  std::string snapshot = snapshot_to_string(original);
  Broker restored = make_broker(config);
  snapshot_from_string(restored, snapshot);

  // Forwarding must be bit-identical: same interfaces, same message types,
  // same deliveries, same suppression counts, for every probe publication.
  for (const char* path : {"/r/x/a", "/r/x/b", "/r/x", "/r"}) {
    Message probe = pub(path);  // same doc id into both brokers
    auto before = original.handle(kLeft, probe);
    auto after = restored.handle(kLeft, probe);
    std::multiset<std::pair<IfaceId, int>> b_fwd, a_fwd;
    for (const auto& f : before.forwards) {
      b_fwd.emplace(f.interface, static_cast<int>(f.message.type()));
    }
    for (const auto& f : after.forwards) {
      a_fwd.emplace(f.interface, static_cast<int>(f.message.type()));
    }
    EXPECT_EQ(b_fwd, a_fwd) << path;
    EXPECT_EQ(before.deliveries, after.deliveries) << path;
    EXPECT_EQ(before.suppressed_false_positives,
              after.suppressed_false_positives)
        << path;
  }

  // The restored broker re-serialises to the same record set.
  auto lines = [](const std::string& text) {
    std::multiset<std::string> out;
    std::istringstream is(text);
    for (std::string line; std::getline(is, line);) out.insert(line);
    return out;
  };
  EXPECT_EQ(lines(snapshot_to_string(restored)), lines(snapshot));
}

TEST(Snapshot, FlatModeRoundTrip) {
  Broker::Config config;
  config.use_covering = false;
  config.use_advertisements = false;
  Broker original = make_broker(config);
  original.handle(kClient, Message::subscribe(X("/a")));
  original.handle(kLeft, Message::subscribe(X("/a/b")));

  Broker restored = make_broker(config);
  snapshot_from_string(restored, snapshot_to_string(original));
  EXPECT_EQ(restored.prt_size(), 2u);
  auto r = restored.handle(kRight, pub("/a/b"));
  EXPECT_EQ(r.deliveries, 1u);
}

TEST(Snapshot, MalformedInputs) {
  // Fresh broker per case: a restore aborted mid-stream may already have
  // applied records, and a second restore into that broker is a
  // logic_error, not a ParseError.
  auto expect_parse_error = [](const char* text) {
    Broker broker = make_broker();
    EXPECT_THROW(snapshot_from_string(broker, text), ParseError) << text;
  };
  expect_parse_error("");
  expect_parse_error("wrong header\nend\n");
  // sub without hops
  expect_parse_error("xroute-broker-snapshot 1\nsub\t/a\n");
  expect_parse_error("xroute-broker-snapshot 1\nbogus\tx\nend\n");
  // truncated: no 'end'
  expect_parse_error("xroute-broker-snapshot 1\nsub\t/a\t1\n");
  expect_parse_error("xroute-broker-snapshot 1\nsrt\t/a\tNaN\nend\n");
}

TEST(Snapshot, UnsupportedVersionHeaderIsParseError) {
  auto expect_parse_error = [](const char* text) {
    Broker broker = make_broker();
    EXPECT_THROW(snapshot_from_string(broker, text), ParseError) << text;
  };
  // Right format, future version: rejected with a clear ParseError rather
  // than misparsed.
  expect_parse_error("xroute-broker-snapshot 2\nend\n");
  expect_parse_error("xroute-broker-snapshot\nend\n");
  // Foreign header entirely.
  expect_parse_error("xroute-link-sync 1\nend\n");
}

TEST(Snapshot, RestoreIntoNonEmptyBrokerIsLogicError) {
  Broker populated = populated_broker();
  std::string snapshot = snapshot_to_string(populated);
  // Any pre-existing routing state vetoes a restore: SRT/PRT entries,
  // client tables, or forwarding records.
  EXPECT_THROW(snapshot_from_string(populated, snapshot), std::logic_error);

  Broker subscribed = make_broker();
  subscribed.handle(kLeft, Message::subscribe(X("/a/b")));
  EXPECT_THROW(snapshot_from_string(subscribed, snapshot), std::logic_error);

  // A fresh broker with the same interfaces accepts the same snapshot.
  Broker fresh = make_broker();
  EXPECT_NO_THROW(snapshot_from_string(fresh, snapshot));
  EXPECT_EQ(fresh.srt_size(), populated.srt_size());
  EXPECT_EQ(fresh.prt_size(), populated.prt_size());
}

TEST(Snapshot, EmptyBrokerRoundTrip) {
  Broker original = make_broker();
  Broker restored = make_broker();
  snapshot_from_string(restored, snapshot_to_string(original));
  EXPECT_EQ(restored.prt_size(), 0u);
  EXPECT_EQ(restored.srt_size(), 0u);
}

}  // namespace
}  // namespace xroute
