// Fault injection, reliable links and crash-recovery resync.
//
// The delivery-equality soak at the bottom is the PR's headline property:
// under drops, duplication, reordering and broker crash/restarts, every
// subscriber receives exactly the notification set of a fault-free
// reference run, with zero duplicates.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "router/snapshot.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

/// Deterministic runs: measured wall-clock must not feed simulated time.
Simulator::Options deterministic() { return Simulator::Options{0.0}; }

Broker::Config no_adv_config() {
  Broker::Config config;
  config.use_advertisements = false;
  return config;
}

TEST(FaultPlan, ParsesFullPlan) {
  FaultPlan plan = parse_fault_plan(
      "# scenario: lossy tree with one crash\n"
      "seed 7\n"
      "topology chain 4\n"
      "subscribers 3\n"
      "documents 25\n"
      "drop 0.10\n"
      "dup 0.02\n"
      "reorder 0.10 2.0\n"
      "link 1 2 drop 0.30\n"
      "link 2 1 down 10.0 90.0\n"
      "crash 1 200.0 resync\n"
      "crash 2 300.0 snapshot\n");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_EQ(plan.topology, "chain");
  EXPECT_EQ(plan.topology_size, 4u);
  EXPECT_EQ(plan.subscribers, 3u);
  EXPECT_EQ(plan.documents, 25u);
  EXPECT_DOUBLE_EQ(plan.default_profile.drop_prob, 0.10);
  EXPECT_DOUBLE_EQ(plan.default_profile.dup_prob, 0.02);
  EXPECT_DOUBLE_EQ(plan.default_profile.reorder_prob, 0.10);
  EXPECT_DOUBLE_EQ(plan.default_profile.reorder_jitter_ms, 2.0);
  // Both (1,2) directives land on the same normalised key.
  ASSERT_EQ(plan.link_profiles.size(), 1u);
  const FaultProfile& link = plan.link_profiles.at({1, 2});
  EXPECT_DOUBLE_EQ(link.drop_prob, 0.30);
  ASSERT_EQ(link.down_windows.size(), 1u);
  EXPECT_FALSE(link.link_up(50.0));
  EXPECT_TRUE(link.link_up(90.0));
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crashes[0].broker, 1);
  EXPECT_EQ(plan.crashes[0].mode, RestartMode::kColdResync);
  EXPECT_EQ(plan.crashes[1].mode, RestartMode::kSnapshot);
}

TEST(FaultPlan, RejectsMalformedInput) {
  EXPECT_THROW(parse_fault_plan("drop lots\n"), ParseError);
  EXPECT_THROW(parse_fault_plan("bogus 1\n"), ParseError);
  EXPECT_THROW(parse_fault_plan("down 5 5\n"), ParseError);  // empty window
  EXPECT_THROW(parse_fault_plan("crash 1 10 maybe\n"), ParseError);
  EXPECT_THROW(parse_fault_plan("link 1 drop 0.5\n"), ParseError);
  EXPECT_THROW(parse_fault_plan("topology ring 4\n"), ParseError);
}

TEST(FaultInjection, ProfileInstallationRequiresEnabling) {
  Simulator sim(deterministic());
  sim.add_broker(no_adv_config());
  sim.add_broker(no_adv_config());
  sim.connect(0, 1, LinkConfig{});
  EXPECT_THROW(sim.set_default_link_faults(FaultProfile{}), std::logic_error);
  sim.enable_fault_injection(1);
  EXPECT_NO_THROW(sim.set_default_link_faults(FaultProfile{}));
  EXPECT_THROW(sim.set_link_faults(0, 7, FaultProfile{}), std::logic_error);
}

/// Chain of brokers with one subscriber at the far end and one publisher
/// at the near end; used by most transport tests below.
struct ChainRig {
  Simulator sim{deterministic()};
  int subscriber = -1;
  int publisher = -1;

  explicit ChainRig(std::size_t brokers) {
    for (std::size_t i = 0; i < brokers; ++i) sim.add_broker(no_adv_config());
    for (std::size_t i = 0; i + 1 < brokers; ++i) {
      sim.connect(static_cast<int>(i), static_cast<int>(i + 1), LinkConfig{});
    }
    subscriber = sim.attach_client(static_cast<int>(brokers - 1));
    publisher = sim.attach_client(0);
  }

  void subscribe_and_settle(const char* xpe) {
    sim.subscribe(subscriber, parse_xpe(xpe));
    sim.run();
  }

  /// Publishes `n` single-path documents matching /a/b.
  void publish_docs(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      sim.publish_paths(publisher, {parse_path("/a/b")}, 100);
    }
  }
};

TEST(FaultInjection, LossyLinkStillDeliversExactlyOnce) {
  ChainRig rig(3);
  rig.sim.enable_fault_injection(11);
  FaultProfile lossy;
  lossy.drop_prob = 0.2;
  rig.sim.set_default_link_faults(lossy);

  rig.subscribe_and_settle("/a");
  rig.publish_docs(50);
  rig.sim.run();

  EXPECT_EQ(rig.sim.notifications_of(rig.subscriber), 50u);
  EXPECT_EQ(rig.sim.stats().duplicate_notifications(), 0u);
  EXPECT_GT(rig.sim.stats().frames_dropped(), 0u);
  EXPECT_GT(rig.sim.stats().retransmits(), 0u);
  EXPECT_EQ(rig.sim.stats().retransmit_failures(), 0u);
}

TEST(FaultInjection, DuplicationAndReorderAreTransparent) {
  ChainRig rig(3);
  rig.sim.enable_fault_injection(13);
  FaultProfile noisy;
  noisy.dup_prob = 0.3;
  noisy.reorder_prob = 0.4;
  noisy.reorder_jitter_ms = 5.0;
  rig.sim.set_default_link_faults(noisy);

  rig.subscribe_and_settle("/a");
  rig.publish_docs(50);
  rig.sim.run();

  EXPECT_EQ(rig.sim.notifications_of(rig.subscriber), 50u);
  EXPECT_EQ(rig.sim.stats().duplicate_notifications(), 0u);
  EXPECT_GT(rig.sim.stats().frames_duplicated(), 0u);
  EXPECT_GT(rig.sim.stats().link_duplicates_suppressed(), 0u);
  EXPECT_GT(rig.sim.stats().reorders_injected(), 0u);
}

TEST(FaultInjection, DownWindowDelaysButDoesNotLose) {
  ChainRig rig(2);
  rig.sim.enable_fault_injection(17);
  rig.subscribe_and_settle("/a");

  double start = rig.sim.now();
  FaultProfile outage;
  outage.down_windows.emplace_back(start, start + 40.0);
  rig.sim.set_default_link_faults(outage);

  rig.publish_docs(10);
  Simulator::QuiesceReport report = rig.sim.run_until_quiescent();

  EXPECT_TRUE(report.quiesced);
  EXPECT_EQ(rig.sim.notifications_of(rig.subscriber), 10u);
  EXPECT_GT(rig.sim.stats().frames_dropped(), 0u);
  EXPECT_GT(rig.sim.stats().retransmits(), 0u);
  // Nothing could get through before the window closed.
  EXPECT_GE(report.last_activity, start + 40.0);
}

TEST(FaultInjection, SameSeedSameOutcome) {
  auto run_once = [](std::uint64_t seed) {
    ChainRig rig(4);
    rig.sim.enable_fault_injection(seed);
    FaultProfile messy;
    messy.drop_prob = 0.15;
    messy.dup_prob = 0.1;
    messy.reorder_prob = 0.2;
    messy.reorder_jitter_ms = 3.0;
    rig.sim.set_default_link_faults(messy);
    rig.subscribe_and_settle("/a");
    rig.publish_docs(30);
    rig.sim.run();
    return std::tuple{rig.sim.stats().frames_dropped(),
                      rig.sim.stats().retransmits(),
                      rig.sim.stats().link_duplicates_suppressed(),
                      rig.sim.stats().out_of_order_deliveries(),
                      rig.sim.stats().acks_sent(),
                      rig.sim.delivered_docs(rig.subscriber)};
  };
  EXPECT_EQ(run_once(23), run_once(23));
  EXPECT_NE(std::get<0>(run_once(23)), std::get<0>(run_once(24)));
}

TEST(FaultInjection, CleanNetworkCarriesZeroOverhead) {
  // Identical scenario with fault injection off and with it on but
  // fault-free: the broker-visible message counts must be identical
  // (reliability adds no messages on a clean network) and the disabled run
  // must show zero transport activity.
  auto run_once = [](bool faults_enabled) {
    ChainRig rig(3);
    if (faults_enabled) {
      rig.sim.enable_fault_injection(5);
      rig.sim.set_default_link_faults(FaultProfile{});
    }
    rig.subscribe_and_settle("/a");
    rig.publish_docs(20);
    rig.sim.run();
    return std::tuple{rig.sim.stats().total_broker_messages(),
                      rig.sim.stats().total_broker_bytes(),
                      rig.sim.notifications_of(rig.subscriber),
                      rig.sim.stats().retransmits(),
                      rig.sim.stats().acks_sent()};
  };
  auto off = run_once(false);
  auto on = run_once(true);
  EXPECT_EQ(std::get<0>(off), std::get<0>(on));
  EXPECT_EQ(std::get<1>(off), std::get<1>(on));
  EXPECT_EQ(std::get<2>(off), std::get<2>(on));
  // Disabled: the reliability layer does not exist.
  EXPECT_EQ(std::get<3>(off), 0u);
  EXPECT_EQ(std::get<4>(off), 0u);
  // Enabled on a clean network: acks flow but nothing is retransmitted.
  EXPECT_EQ(std::get<3>(on), 0u);
  EXPECT_GT(std::get<4>(on), 0u);
}

// -- Crash semantics (satellite: restart_broker flushes in-flight events) ---

TEST(CrashRecovery, ColdRestartDropsPreCrashTraffic) {
  ChainRig rig(2);
  rig.subscribe_and_settle("/a");

  // Put a publication in flight: the client hop has been delivered and
  // broker 0's forward toward broker 1 is sitting in the queue when
  // broker 1 dies.
  rig.publish_docs(1);
  rig.sim.run_limited(1);  // client hop done; 0 -> 1 forward is in flight
  rig.sim.restart_broker(1);
  rig.sim.run();

  EXPECT_EQ(rig.sim.notifications_of(rig.subscriber), 0u);
  EXPECT_GT(rig.sim.stats().events_flushed_on_crash(), 0u);
  EXPECT_EQ(rig.sim.stats().broker_restarts(), 1u);

  // And the loss is not transient: the cold instance lost its PRT and
  // client tables, so post-crash traffic goes undelivered too...
  rig.publish_docs(1);
  rig.sim.run();
  EXPECT_EQ(rig.sim.notifications_of(rig.subscriber), 0u);

  // ...until the broker is restarted with resync, which restores link
  // state and replays local clients' control state.
  rig.sim.restart_broker(1, "", /*resync=*/true);
  rig.sim.run();
  EXPECT_EQ(rig.sim.stats().resyncs_completed(), 1u);
  rig.publish_docs(1);
  rig.sim.run();
  EXPECT_EQ(rig.sim.notifications_of(rig.subscriber), 1u);
  EXPECT_EQ(rig.sim.stats().duplicate_notifications(), 0u);
}

TEST(CrashRecovery, ResyncAvoidsResubscriptionStorm) {
  // Chain 0-1-2 with the subscriber on broker 0: its subscription was
  // forwarded 0 -> 1 -> 2. Crash-resync the middle broker and verify the
  // subscription is restored from neighbour link state without broker 2
  // (or anyone) seeing subscribe traffic again.
  Simulator sim(deterministic());
  for (int i = 0; i < 3; ++i) sim.add_broker(no_adv_config());
  sim.connect(0, 1, LinkConfig{});
  sim.connect(1, 2, LinkConfig{});
  int subscriber = sim.attach_client(0);
  int publisher = sim.attach_client(2);
  sim.subscribe(subscriber, parse_xpe("/a"));
  sim.run();

  std::size_t subs_before = sim.stats().broker_messages(MessageType::kSubscribe);
  sim.restart_broker(1, "", /*resync=*/true);
  sim.run();

  EXPECT_EQ(sim.stats().resyncs_completed(), 1u);
  EXPECT_GT(sim.stats().broker_messages(MessageType::kSyncState), 0u);
  // No re-subscription storm: the control plane stayed quiet.
  EXPECT_EQ(sim.stats().broker_messages(MessageType::kSubscribe), subs_before);
  ASSERT_FALSE(sim.stats().resync_durations_ms().empty());
  EXPECT_GT(sim.stats().resync_durations_ms().front(), 0.0);

  // Publications route end-to-end through the recovered broker again.
  sim.publish_paths(publisher, {parse_path("/a/b")}, 100);
  sim.run();
  EXPECT_EQ(sim.notifications_of(subscriber), 1u);
  EXPECT_EQ(sim.stats().duplicate_notifications(), 0u);
}

TEST(CrashRecovery, SnapshotRestartResumesRouting) {
  ChainRig rig(3);
  rig.subscribe_and_settle("/a");

  std::string snapshot = snapshot_to_string(rig.sim.broker(1));
  rig.sim.restart_broker(1, snapshot);
  rig.sim.run();

  rig.publish_docs(5);
  rig.sim.run();
  EXPECT_EQ(rig.sim.notifications_of(rig.subscriber), 5u);
  EXPECT_EQ(rig.sim.stats().duplicate_notifications(), 0u);
  // Snapshot restore needs no handshake.
  EXPECT_EQ(rig.sim.stats().resyncs_completed(), 0u);
}

// -- Delivery-equality soak -------------------------------------------------
//
// Random tree topologies, drop rates up to 20%, duplication, reordering,
// and one crash/restart per run (alternating resync and snapshot
// recovery): every subscriber must end with exactly the notification set
// of the fault-free reference run, and no client may see a duplicate.

struct SoakOutcome {
  std::vector<std::set<std::uint64_t>> delivered;
  std::size_t duplicates = 0;
  std::size_t retransmits = 0;
  std::size_t resyncs = 0;
};

SoakOutcome soak_run(int seed, bool faulted) {
  Rng rng(1000 + static_cast<std::uint64_t>(seed));
  std::size_t brokers = 4 + rng.index(5);  // 4..8
  Topology topology = random_connected(brokers, 0, rng);  // random tree

  Simulator sim(deterministic());
  Broker::Config config = no_adv_config();
  for (std::size_t i = 0; i < brokers; ++i) sim.add_broker(config);
  for (auto [a, b] : topology.edges) sim.connect(a, b, LinkConfig{});

  std::vector<int> subscribers;
  const char* xpes[] = {"/a", "/a/b", "//c", "/d//e"};
  for (int i = 0; i < 4; ++i) {
    int broker = static_cast<int>(rng.index(brokers));
    int client = sim.attach_client(broker);
    sim.subscribe(client, parse_xpe(xpes[i]));
    subscribers.push_back(client);
  }
  int publisher = sim.attach_client(static_cast<int>(rng.index(brokers)));

  if (faulted) {
    FaultProfile profile;
    profile.drop_prob = 0.05 + 0.15 * rng.uniform();  // up to 20%
    profile.dup_prob = 0.05;
    profile.reorder_prob = 0.1;
    profile.reorder_jitter_ms = 4.0;
    sim.enable_fault_injection(static_cast<std::uint64_t>(seed));
    sim.set_default_link_faults(profile);
  }
  sim.run();

  const char* paths[] = {"/a/b", "/a/b/c", "/d/x/e", "/q", "/a"};
  auto publish_batch = [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      sim.publish_paths(publisher, {parse_path(paths[i % 5])}, 200);
    }
    sim.run();
  };

  publish_batch(15);

  // One crash/restart per run at a quiescent point. The reference run
  // must crash too — a broker that loses in-flight state it can never
  // recover (non-persistent pub/sub) is outside the equality contract,
  // but a *recovered* broker must be transparent.
  int victim = static_cast<int>(rng.index(brokers));
  if (seed % 2 == 0) {
    sim.restart_broker(victim, "", /*resync=*/true);
  } else {
    sim.restart_broker(victim, snapshot_to_string(sim.broker(victim)));
  }
  sim.run();

  publish_batch(15);

  SoakOutcome outcome;
  for (int client : subscribers) {
    outcome.delivered.push_back(sim.delivered_docs(client));
  }
  outcome.duplicates = sim.stats().duplicate_notifications();
  outcome.retransmits = sim.stats().retransmits();
  outcome.resyncs = sim.stats().resyncs_completed();
  return outcome;
}

class FaultSoak : public ::testing::TestWithParam<int> {};

TEST_P(FaultSoak, DeliveryEqualsFaultFreeReference) {
  int seed = GetParam();
  SoakOutcome reference = soak_run(seed, /*faulted=*/false);
  SoakOutcome faulted = soak_run(seed, /*faulted=*/true);

  ASSERT_EQ(reference.delivered.size(), faulted.delivered.size());
  for (std::size_t i = 0; i < reference.delivered.size(); ++i) {
    EXPECT_EQ(reference.delivered[i], faulted.delivered[i])
        << "subscriber " << i << " (seed " << seed << ")";
  }
  EXPECT_EQ(reference.duplicates, 0u);
  EXPECT_EQ(faulted.duplicates, 0u);
  if (seed % 2 == 0) EXPECT_EQ(faulted.resyncs, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSoak, ::testing::Range(0, 20));

}  // namespace
}  // namespace xroute
