// Edge-case tests across modules: SRT bookkeeping, simulator
// unadvertisement end-to-end, cyclic-overlay duplicate suppression at the
// broker level, predicate value corner cases, derivation caps.
#include <gtest/gtest.h>

#include <functional>

#include "adv/derive.hpp"
#include "core/network.hpp"
#include "dtd/parser.hpp"
#include "router/routing_tables.hpp"
#include "workload/dtd_corpus.hpp"
#include "xpath/parser.hpp"
#include "xpath/predicate.hpp"

namespace xroute {
namespace {

TEST(SrtTest, AddRemoveAndOverlap) {
  Srt srt;
  Advertisement a1 = Advertisement::from_elements({"a", "b"});
  Advertisement a2 = parse_advertisement("/a(/b)+/c");
  EXPECT_TRUE(srt.add(a1, IfaceId{1}));
  EXPECT_FALSE(srt.add(a1, IfaceId{2}));  // second hop, same advertisement
  EXPECT_TRUE(srt.add(a2, IfaceId{1}));
  EXPECT_EQ(srt.size(), 2u);

  auto hops = srt.hops_overlapping(parse_xpe("/a/b"));
  EXPECT_EQ(hops, ifaces({1, 2}));
  // Overlapping only the recursive advertisement.
  EXPECT_EQ(srt.hops_overlapping(parse_xpe("/a/b/b/c")), ifaces({1}));
  EXPECT_TRUE(srt.hops_overlapping(parse_xpe("/zzz")).empty());

  EXPECT_TRUE(srt.remove(a1, IfaceId{1}));
  EXPECT_EQ(srt.size(), 2u);  // hop 2 remains
  EXPECT_TRUE(srt.remove(a1, IfaceId{2}));
  EXPECT_EQ(srt.size(), 1u);
  EXPECT_FALSE(srt.remove(a1, IfaceId{2}));  // already gone
}

TEST(SimulatorUnadvertise, StopsSubscriptionRouting) {
  Network::Options options;
  options.topology = chain(3);
  options.strategy = RoutingStrategy::with_adv_with_cov();
  options.dtd = psd_dtd();
  options.processing_scale = 0.0;
  Network net(std::move(options));
  int publisher = net.add_publisher(0);
  net.run();
  ASSERT_GT(net.simulator().broker(2).srt_size(), 0u);

  // Withdraw every advertisement; the SRT drains across the overlay.
  for (const Advertisement& adv : net.advertisements()) {
    net.simulator().unadvertise(publisher, adv);
  }
  net.run();
  for (int b = 0; b < 3; ++b) {
    EXPECT_EQ(net.simulator().broker(b).srt_size(), 0u) << b;
  }

  // A new subscription now has nowhere to go.
  int subscriber = net.add_subscriber(2);
  net.subscribe(subscriber, parse_xpe("//sequence"));
  net.run();
  EXPECT_EQ(net.simulator().broker(0).prt_size(), 0u);
}

TEST(BrokerDedup, SamePublicationProcessedOnce) {
  Broker::Config config;
  config.use_advertisements = false;
  Broker broker(0, config);
  broker.add_neighbor(IfaceId{1});
  broker.add_neighbor(IfaceId{2});
  broker.handle(IfaceId{2}, Message::subscribe(parse_xpe("/a")));

  PublishMsg msg;
  msg.path = parse_path("/a/b");
  msg.doc_id = 7;
  msg.path_id = 3;
  auto first = broker.handle(IfaceId{1}, Message{msg});
  EXPECT_EQ(first.forwards.size(), 1u);
  // The same (doc, path) arriving again — e.g. over another overlay path —
  // is suppressed entirely.
  auto second = broker.handle(IfaceId{1}, Message{msg});
  EXPECT_TRUE(second.forwards.empty());
  // A different path of the same document still flows.
  msg.path_id = 4;
  auto third = broker.handle(IfaceId{1}, Message{msg});
  EXPECT_EQ(third.forwards.size(), 1u);
}

TEST(PredicateValues, NegativeAndFloatNumbers) {
  EXPECT_TRUE(compare_values("-3", Predicate::Op::kLt, "2"));
  EXPECT_TRUE(compare_values("-3.5", Predicate::Op::kLt, "-3"));
  EXPECT_TRUE(compare_values("10", Predicate::Op::kGt, "9.99"));
  // "10" vs "9" numerically, not lexicographically.
  EXPECT_TRUE(compare_values("10", Predicate::Op::kGt, "9"));
  EXPECT_FALSE(parse_number("1e"));     // trailing junk
  EXPECT_TRUE(parse_number("1e3"));     // scientific is a number
  EXPECT_FALSE(parse_number(""));
  EXPECT_FALSE(parse_number("12 "));
}

TEST(DeriveCaps, TruncationWithRepairStaysBounded) {
  Dtd dtd = news_dtd();
  DeriveOptions options;
  options.max_advertisements = 50;
  options.repair = true;
  auto derived = derive_advertisements(dtd, options);
  EXPECT_TRUE(derived.truncated);
  EXPECT_LE(derived.advertisements.size(), 50u);
}

TEST(RandomTopology, ConnectedWithRequestedCycles) {
  Rng rng(3);
  Topology t = random_connected(12, 5, rng);
  EXPECT_EQ(t.num_brokers, 12u);
  EXPECT_EQ(t.edges.size(), 11u + 5u);
  // Connectivity: union-find over the edges.
  std::vector<int> parent(12);
  for (int i = 0; i < 12; ++i) parent[i] = i;
  std::function<int(int)> find = [&](int x) {
    return parent[x] == x ? x : parent[x] = find(parent[x]);
  };
  for (auto [a, b] : t.edges) parent[find(a)] = find(b);
  for (int i = 1; i < 12; ++i) EXPECT_EQ(find(i), find(0));
}

TEST(NetworkFacade, ByteAccounting) {
  Network::Options options;
  options.topology = chain(2);
  options.strategy = RoutingStrategy::with_adv_with_cov();
  options.dtd = psd_dtd();
  options.processing_scale = 0.0;
  Network net(std::move(options));
  int publisher = net.add_publisher(0);
  int subscriber = net.add_subscriber(1);
  net.run();
  net.subscribe(subscriber, parse_xpe("//sequence"));
  net.run();
  std::size_t control_bytes = net.stats().total_broker_bytes();
  EXPECT_GT(control_bytes, 0u);
  net.publish_paths(publisher,
                    {parse_path("/ProteinDatabase/ProteinEntry/sequence")},
                    50000);
  net.run();
  // The 50 KB document dominates the byte count once published.
  EXPECT_GT(net.stats().broker_bytes(MessageType::kPublish), 50000u);
  EXPECT_GT(net.stats().total_broker_bytes(), control_bytes + 50000u);
}

}  // namespace
}  // namespace xroute
