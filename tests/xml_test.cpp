// Unit tests for the XML document model, parser and path extraction.
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "xml/document.hpp"
#include "xml/parser.hpp"
#include "xml/paths.hpp"

namespace xroute {
namespace {

TEST(XmlParser, SimpleDocument) {
  XmlDocument doc = parse_xml("<a><b>hello</b><c/></a>");
  EXPECT_EQ(doc.root().name, "a");
  ASSERT_EQ(doc.root().children.size(), 2u);
  EXPECT_EQ(doc.root().children[0].name, "b");
  EXPECT_EQ(doc.root().children[0].text, "hello");
  EXPECT_TRUE(doc.root().children[1].is_leaf());
}

TEST(XmlParser, Attributes) {
  XmlDocument doc = parse_xml(R"(<a x="1" y='two &amp; three'><b k="v"/></a>)");
  ASSERT_EQ(doc.root().attributes.size(), 2u);
  EXPECT_EQ(doc.root().attributes[0].first, "x");
  EXPECT_EQ(doc.root().attributes[0].second, "1");
  EXPECT_EQ(doc.root().attributes[1].second, "two & three");
  EXPECT_EQ(doc.root().children[0].attributes[0].second, "v");
}

TEST(XmlParser, EntitiesInText) {
  XmlDocument doc = parse_xml("<a>&lt;x&gt; &amp; &quot;y&quot; &#65;</a>");
  EXPECT_EQ(doc.root().text, "<x> & \"y\" A");
}

TEST(XmlParser, CommentsAndProcessingInstructions) {
  XmlDocument doc = parse_xml(
      "<?xml version=\"1.0\"?><!-- head --><a><!-- inner --><b/></a><!-- tail -->");
  EXPECT_EQ(doc.root().name, "a");
  ASSERT_EQ(doc.root().children.size(), 1u);
}

TEST(XmlParser, Doctype) {
  XmlDocument doc = parse_xml(
      "<!DOCTYPE a [ <!ELEMENT a (b)> ]><a><b/></a>");
  EXPECT_EQ(doc.root().name, "a");
}

TEST(XmlParser, Cdata) {
  XmlDocument doc = parse_xml("<a><![CDATA[<not-a-tag>]]><b/></a>");
  ASSERT_EQ(doc.root().children.size(), 1u);
}

TEST(XmlParser, Whitespace) {
  XmlDocument doc = parse_xml("  <a >\n  <b  x = \"1\" />\n</a>  ");
  EXPECT_EQ(doc.root().name, "a");
  ASSERT_EQ(doc.root().children.size(), 1u);
}

TEST(XmlParser, Errors) {
  EXPECT_THROW(parse_xml(""), ParseError);
  EXPECT_THROW(parse_xml("<a>"), ParseError);
  EXPECT_THROW(parse_xml("<a></b>"), ParseError);
  EXPECT_THROW(parse_xml("<a><b></a></b>"), ParseError);
  EXPECT_THROW(parse_xml("<a x=1/>"), ParseError);
  EXPECT_THROW(parse_xml("<a x=\"1/>"), ParseError);
  EXPECT_THROW(parse_xml("<a/><b/>"), ParseError);
  EXPECT_THROW(parse_xml("<a>&unknown;</a>"), ParseError);
  EXPECT_THROW(parse_xml("<!-- unterminated <a/>"), ParseError);
}

TEST(XmlSerialize, RoundTrip) {
  const char* text =
      R"(<?xml version="1.0"?><news a="1"><head><title>x &amp; y</title></head><body/></news>)";
  XmlDocument doc = parse_xml(text);
  XmlDocument again = parse_xml(doc.serialize());
  EXPECT_EQ(doc.serialize(), again.serialize());
  EXPECT_EQ(again.root().children[0].children[0].text, "x & y");
}

TEST(XmlNode, SubtreeSizeAndDepth) {
  XmlDocument doc = parse_xml("<a><b><c/><d/></b><e/></a>");
  EXPECT_EQ(doc.root().subtree_size(), 5u);
  EXPECT_EQ(doc.root().depth(), 3u);
}

TEST(PathExtraction, RootToLeafPaths) {
  XmlDocument doc = parse_xml("<a><b><c/><d/></b><e/></a>");
  auto paths = extract_paths(doc);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0].to_string(), "/a/b/c");
  EXPECT_EQ(paths[1].to_string(), "/a/b/d");
  EXPECT_EQ(paths[2].to_string(), "/a/e");
}

TEST(PathExtraction, DuplicatePathsCollapse) {
  XmlDocument doc = parse_xml("<a><b><c/></b><b><c/></b></a>");
  auto paths = extract_paths(doc);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].to_string(), "/a/b/c");
}

TEST(PathExtraction, DepthCap) {
  XmlDocument doc = parse_xml("<a><b><c><d/></c></b></a>");
  auto paths = extract_paths(doc, 2);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].to_string(), "/a/b");
}

TEST(PathExtraction, SingleElementDocument) {
  auto paths = extract_paths(parse_xml("<solo/>"));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].to_string(), "/solo");
}

TEST(PathParse, RoundTrip) {
  Path p = parse_path("/a/b/c");
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.to_string(), "/a/b/c");
  EXPECT_THROW(parse_path(""), ParseError);
  EXPECT_THROW(parse_path("a/b"), ParseError);
  EXPECT_THROW(parse_path("/a//b"), ParseError);
}

TEST(XmlEscape, AllEntities) {
  EXPECT_EQ(xml_escape("<&>'\""), "&lt;&amp;&gt;&apos;&quot;");
}

}  // namespace
}  // namespace xroute
