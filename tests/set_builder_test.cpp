// Unit tests for the covering-rate-controlled set builder.
#include <gtest/gtest.h>

#include <set>

#include "workload/dtd_corpus.hpp"
#include "workload/set_builder.hpp"
#include "workload/xpath_gen.hpp"

namespace xroute {
namespace {

TEST(SetBuilder, HitsTargetRatesExactly) {
  for (double target : {0.5, 0.9}) {
    CoverSetOptions options;
    options.count = 800;
    options.target_rate = target;
    options.seed = 13;
    CoverSet set = build_covering_set(news_dtd(), options);
    ASSERT_EQ(set.xpes.size(), 800u) << target;
    EXPECT_NEAR(set.constructed_rate, target, 0.02);
    // The constructed rate is the *actual* covering rate (exact tracking).
    EXPECT_NEAR(covering_rate(set.xpes), set.constructed_rate, 1e-9);
  }
}

TEST(SetBuilder, QueriesAreDistinct) {
  CoverSetOptions options;
  options.count = 500;
  options.target_rate = 0.7;
  options.seed = 5;
  CoverSet set = build_covering_set(news_dtd(), options);
  std::set<std::string> seen;
  for (const Xpe& x : set.xpes) {
    EXPECT_TRUE(seen.insert(x.to_string()).second) << x.to_string();
    EXPECT_LE(x.size(), 10u);
  }
}

TEST(SetBuilder, Reproducible) {
  CoverSetOptions options;
  options.count = 200;
  options.target_rate = 0.6;
  options.seed = 77;
  CoverSet a = build_covering_set(psd_dtd(), options);
  CoverSet b = build_covering_set(psd_dtd(), options);
  ASSERT_EQ(a.xpes.size(), b.xpes.size());
  for (std::size_t i = 0; i < a.xpes.size(); ++i) {
    EXPECT_EQ(a.xpes[i], b.xpes[i]);
  }
}

TEST(SetBuilder, StopsAtCapacityRatherThanOvershooting) {
  // PSD's path space is tiny; a large low-rate request must cap out while
  // keeping the rate near target, not pad with covered members.
  CoverSetOptions options;
  options.count = 5000;
  options.target_rate = 0.5;
  options.seed = 2;
  CoverSet set = build_covering_set(psd_dtd(), options);
  EXPECT_LT(set.xpes.size(), 5000u);
  EXPECT_GT(set.xpes.size(), 50u);
  EXPECT_NEAR(set.constructed_rate, 0.5, 0.1);
}

TEST(SetBuilder, RespectsMaxLength) {
  CoverSetOptions options;
  options.count = 300;
  options.target_rate = 0.5;
  options.max_length = 6;
  options.seed = 3;
  CoverSet set = build_covering_set(news_dtd(), options);
  for (const Xpe& x : set.xpes) {
    EXPECT_LE(x.size(), 6u);
  }
}

}  // namespace
}  // namespace xroute
