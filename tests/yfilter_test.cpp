// Tests for the YFilter-style shared-NFA baseline matcher.
#include <gtest/gtest.h>

#include <set>

#include "match/pub_match.hpp"
#include "match/yfilter.hpp"
#include "oracles.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/xml_gen.hpp"
#include "workload/xpath_gen.hpp"
#include "xml/parser.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

using testing::random_path;
using testing::random_xpe;
using testing::small_alphabet;

TEST(YFilter, BasicStructuralMatching) {
  YFilterIndex index;
  int q_abs = index.add(parse_xpe("/a/b/c"));
  int q_prefix = index.add(parse_xpe("/a/b"));
  int q_wild = index.add(parse_xpe("/a/*/c"));
  int q_desc = index.add(parse_xpe("/a//c"));
  int q_rel = index.add(parse_xpe("b/c"));
  int q_none = index.add(parse_xpe("/x"));

  auto got = index.match(parse_path("/a/b/c"));
  EXPECT_EQ(std::set<int>(got.begin(), got.end()),
            (std::set<int>{q_abs, q_prefix, q_wild, q_desc, q_rel}));
  EXPECT_EQ(index.size(), 6u);
  (void)q_none;
}

TEST(YFilter, SharedPrefixesShareStates) {
  YFilterIndex a;
  a.add(parse_xpe("/a/b/c"));
  std::size_t one = a.state_count();
  a.add(parse_xpe("/a/b/d"));
  a.add(parse_xpe("/a/b/e"));
  // Each extra query adds exactly one state: the prefix is shared.
  EXPECT_EQ(a.state_count(), one + 2);
}

TEST(YFilter, DescendantSelfLoop) {
  YFilterIndex index;
  int q = index.add(parse_xpe("//b//d"));
  for (const char* path : {"/b/d", "/a/b/d", "/b/x/y/d", "/a/b/c/d/e"}) {
    auto got = index.match(parse_path(path));
    EXPECT_EQ(got, (std::vector<int>{q})) << path;
  }
  EXPECT_TRUE(index.match(parse_path("/d/b")).empty());
}

TEST(YFilter, PredicatePostVerification) {
  YFilterIndex index;
  int typed = index.add(parse_xpe("//media[@type='photo']"));
  int any = index.add(parse_xpe("//media"));
  XmlDocument doc =
      parse_xml(R"(<n><media type="photo"><r/></media><q/></n>)");
  Path p = extract_paths(doc)[0];
  auto got = index.match(p);
  EXPECT_EQ(std::set<int>(got.begin(), got.end()),
            (std::set<int>{typed, any}));

  XmlDocument doc2 = parse_xml(R"(<n><media type="video"><r/></media></n>)");
  auto got2 = index.match(extract_paths(doc2)[0]);
  EXPECT_EQ(got2, (std::vector<int>{any}));
}

class YFilterProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(YFilterProperty, AgreesWithFlatScan) {
  Rng rng(GetParam());
  YFilterIndex index;
  std::vector<Xpe> queries;
  for (int i = 0; i < 200; ++i) {
    Xpe q = random_xpe(rng, small_alphabet(), 5);
    index.add(q);
    queries.push_back(q);
  }
  for (int i = 0; i < 300; ++i) {
    Path p = random_path(rng, small_alphabet(), 7);
    std::set<int> expected;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      if (matches(p, queries[q])) expected.insert(static_cast<int>(q));
    }
    auto got = index.match(p);
    ASSERT_EQ(std::set<int>(got.begin(), got.end()), expected)
        << p.to_string() << " seed " << GetParam();
  }
}

TEST_P(YFilterProperty, AgreesOnDtdWorkload) {
  Rng rng(GetParam() + 7);
  Dtd dtd = psd_dtd();
  XpathGenOptions options;
  options.count = 150;
  options.seed = GetParam();
  options.predicate_prob = 0.2;
  auto queries = generate_xpaths(dtd, options);
  YFilterIndex index;
  for (const Xpe& q : queries) index.add(q);

  for (int d = 0; d < 10; ++d) {
    XmlDocument doc = generate_document(dtd, rng, {});
    for (const Path& p : extract_paths(doc)) {
      std::set<int> expected;
      for (std::size_t q = 0; q < queries.size(); ++q) {
        if (matches(p, queries[q])) expected.insert(static_cast<int>(q));
      }
      auto got = index.match(p);
      ASSERT_EQ(std::set<int>(got.begin(), got.end()), expected)
          << p.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, YFilterProperty, ::testing::Values(31, 32, 33));

}  // namespace
}  // namespace xroute
