// Unit tests for the utility layer: flags, rng, messages, text tables.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <utility>

#include "core/experiment.hpp"
#include "router/message.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/symbols.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

TEST(FlagsTest, ParsesAllForms) {
  Flags flags("test");
  flags.define("count", "10", "a count");
  flags.define("rate", "0.5", "a rate");
  flags.define("name", "x", "a name");
  flags.define("verbose", "false", "a bool");
  const char* argv[] = {"prog", "--count=42", "--rate", "0.9", "--verbose"};
  EXPECT_TRUE(flags.parse(5, const_cast<char**>(argv)));
  EXPECT_EQ(flags.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 0.9);
  EXPECT_EQ(flags.get_string("name"), "x");  // default preserved
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(FlagsTest, UnknownFlagThrows) {
  Flags flags("test");
  flags.define("count", "10", "a count");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(flags.parse(2, const_cast<char**>(argv)), std::invalid_argument);
}

TEST(FlagsTest, HelpReturnsFalse) {
  Flags flags("test");
  flags.define("count", "10", "a count");
  const char* argv[] = {"prog", "--help"};
  ::testing::internal::CaptureStdout();
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
  std::string usage = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(usage.find("--count"), std::string::npos);
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(1), b(1);
  for (int i = 0; i < 100; ++i) {
    int va = a.uniform_int(3, 7);
    EXPECT_EQ(va, b.uniform_int(3, 7));
    EXPECT_GE(va, 3);
    EXPECT_LE(va, 7);
    double d = a.uniform();
    (void)b.uniform();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(MessageTest, TypesAndWireBytes) {
  Message adv = Message::advertise(Advertisement::from_elements({"a", "b"}), 1);
  Message sub = Message::subscribe(parse_xpe("/a/b"));
  Message unsub = Message::unsubscribe(parse_xpe("/a/b"));
  EXPECT_EQ(adv.type(), MessageType::kAdvertise);
  EXPECT_EQ(sub.type(), MessageType::kSubscribe);
  EXPECT_EQ(unsub.type(), MessageType::kUnsubscribe);
  EXPECT_GT(adv.wire_bytes(), 0u);
  EXPECT_GT(sub.wire_bytes(), 0u);

  PublishMsg pub;
  pub.path = parse_path("/a/b");
  pub.doc_bytes = 10000;
  pub.paths_in_doc = 10;
  Message msg{pub};
  EXPECT_EQ(msg.type(), MessageType::kPublish);
  // Document bytes amortise over the document's paths.
  EXPECT_GE(msg.wire_bytes(), 1000u);
  EXPECT_LT(msg.wire_bytes(), 2000u);

  EXPECT_STREQ(to_string(MessageType::kPublish), "publish");
  EXPECT_STREQ(to_string(MessageType::kAdvertise), "advertise");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer-name", "2.50"});
  std::ostringstream os;
  table.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(TextTable::fmt(1.234, 2), "1.23");
  EXPECT_EQ(TextTable::fmt(std::size_t{42}), "42");
}

TEST(StrategyMatrixTest, PaperOrderAndNames) {
  auto specs = paper_strategy_matrix(0.1);
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs.front().name, "no-Adv-no-Cov");
  EXPECT_EQ(specs.back().name, "with-Adv-with-CovIPM");
  EXPECT_FALSE(specs[0].strategy.advertisements);
  EXPECT_TRUE(specs[5].strategy.merging);
  EXPECT_DOUBLE_EQ(specs[5].strategy.max_imperfect_degree, 0.1);
  EXPECT_DOUBLE_EQ(specs[4].strategy.max_imperfect_degree, 0.0);
}

TEST(SymbolTableTest, InternIsIdempotentAndDense) {
  SymbolTable& table = SymbolTable::global();
  std::uint32_t a = table.intern("util_test_elem_a");
  std::uint32_t b = table.intern("util_test_elem_b");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.intern("util_test_elem_a"), a);
  EXPECT_EQ(table.name(a), "util_test_elem_a");
  // The wildcard is pre-interned as id 0.
  EXPECT_EQ(table.intern("*"), SymbolTable::kWildcardId);
}

TEST(SymbolTableTest, LookupIsReadOnly) {
  SymbolTable& table = SymbolTable::global();
  std::size_t before = table.size();
  // Unknown names must not grow the table (publication vocabulary would
  // otherwise balloon it): they map to the never-matching sentinel.
  EXPECT_EQ(table.lookup("util_test_never_interned_q"), SymbolTable::kNoSymbol);
  EXPECT_EQ(table.size(), before);
  std::uint32_t id = table.intern("util_test_elem_c");
  EXPECT_EQ(table.lookup("util_test_elem_c"), id);
}

TEST(XpeUidTest, EqualValuesShareUidAcrossParses) {
  Xpe a = parse_xpe("/a/b[@x='1']/c");
  Xpe b = parse_xpe("/a/b[@x='1']/c");
  Xpe c = parse_xpe("/a/b/c");
  EXPECT_EQ(a.uid(), b.uid());
  EXPECT_NE(a.uid(), c.uid());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(XpeHash{}(a), XpeHash{}(b));
}

TEST(XpeUidTest, MovedFromBecomesCanonicalEmpty) {
  Xpe a = parse_xpe("/a/b");
  Xpe b = std::move(a);
  EXPECT_EQ(b, parse_xpe("/a/b"));
  // The moved-from value must compare as the empty XPE, never as its old
  // value (uid-based equality would otherwise report a false match).
  // NOLINTNEXTLINE(bugprone-use-after-move) — deliberate post-move check.
  EXPECT_EQ(a, Xpe{});
  EXPECT_TRUE(a.empty());
}

}  // namespace
}  // namespace xroute
