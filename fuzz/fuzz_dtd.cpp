// libFuzzer harness for the DTD-subset parser (dtd/parser.hpp).
//
// Feeds arbitrary bytes to parse_dtd. ParseError is the only exception
// the parser may throw on malformed input; on accepted input the parsed
// Dtd must be internally consistent — every declared element name must be
// a valid name, and the structural queries must not crash.
//
// Build and run: see fuzz/CMakeLists.txt.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "dtd/parser.hpp"
#include "util/error.hpp"
#include "xpath/parser.hpp"  // is_valid_name

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    xroute::Dtd dtd = xroute::parse_dtd(text);
    for (const std::string& name : dtd.declaration_order()) {
      if (!xroute::is_valid_name(name)) {
        std::fprintf(stderr, "accepted invalid element name: \"%s\"\n",
                     name.c_str());
        std::abort();
      }
    }
    (void)dtd.undeclared_references();
  } catch (const xroute::ParseError&) {
    // Malformed input, correctly rejected.
  }
  return 0;
}
