// Fuzz target for the wire codec's strict bounded decoder.
//
// Holds the codec to its contract on arbitrary untrusted bytes: decoding
// never throws, never over-reads (ASan), never allocates from a hostile
// length field, and anything that decodes cleanly re-encodes to a frame
// that decodes to the same payload (a one-step round-trip oracle). The
// same input is also streamed through a FrameDecoder split at a
// data-dependent boundary, so reassembly and sticky-error handling get
// coverage too.
//
// Seed corpus: fuzz/corpus/wire (one valid encoded frame per message
// type, plus truncated and corrupted variants).
#include <cstddef>
#include <cstdint>
#include <vector>

#include "wire/codec.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace xroute::wire;

  Decoded first = decode_frame(data, size);
  if (first.ok() && first.is_message()) {
    // Round-trip oracle: a message the decoder accepted must survive
    // encode → decode with an identical payload.
    std::vector<std::uint8_t> reencoded = encode_frame(first.message);
    Decoded second = decode_frame(reencoded);
    if (second.status != DecodeStatus::kOk) __builtin_trap();
    if (!(second.message.payload == first.message.payload)) __builtin_trap();
  }

  // Stream reassembly: feed in two chunks split at a data-dependent point.
  FrameDecoder decoder;
  std::size_t split = size == 0 ? 0 : (data[0] % (size + 1));
  decoder.feed(data, split);
  decoder.feed(data + split, size - split);
  for (;;) {
    Decoded decoded = decoder.next();
    if (decoded.status != DecodeStatus::kOk) break;
  }
  return 0;
}
