// libFuzzer harness for the XPath-fragment parser (xpath/parser.hpp).
//
// Feeds arbitrary bytes to parse_xpe. Accepted inputs must round-trip:
// to_string() must reparse to the same canonical text — a cheap oracle
// that catches printer/parser drift as well as outright crashes.
// ParseError is the only exception the parser may throw; anything else,
// or an ASan/UBSan report, aborts the run.
//
// Build and run: see fuzz/CMakeLists.txt.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "util/error.hpp"
#include "xpath/parser.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    xroute::Xpe xpe = xroute::parse_xpe(text);
    std::string printed = xpe.to_string();
    xroute::Xpe reparsed = xroute::parse_xpe(printed);
    if (reparsed.to_string() != printed) {
      std::fprintf(stderr, "round-trip drift: \"%s\"\n", printed.c_str());
      std::abort();
    }
  } catch (const xroute::ParseError&) {
    // Malformed input, correctly rejected.
  }
  return 0;
}
