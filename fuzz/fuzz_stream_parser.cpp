// Fuzz target for the streaming path extractor — differential against the
// tree pipeline.
//
// The two parsers share the lexical layer (xml/lexer.hpp) but have
// completely different control flow: recursive-descent DOM construction
// versus an iterative event loop with deferred path materialisation. The
// contract is that they are observationally identical on EVERY input:
// either both throw ParseError, or both succeed with the same path list
// (elements, attributes, text — Path::operator== covers all of it), at
// the uncapped depth and at a small data-dependent cap. Any divergence,
// and any crash/overflow under ASan/UBSan (deep nesting is capped at
// kMaxXmlDepth in both), is a bug.
//
// Seed corpus: fuzz/corpus/stream_xml (well-formed documents, entity and
// CDATA edge cases, deep nesting at and beyond the cap, malformed tails).
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/error.hpp"
#include "xml/parser.hpp"
#include "xml/paths.hpp"
#include "xml/stream_parser.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace xroute;
  std::string_view text(reinterpret_cast<const char*>(data), size);

  std::vector<Path> tree;
  bool tree_threw = false;
  try {
    tree = extract_paths(parse_xml(text));
  } catch (const ParseError&) {
    tree_threw = true;
  }

  std::vector<Path> stream;
  bool stream_threw = false;
  try {
    stream = stream_extract_paths(text);
  } catch (const ParseError&) {
    stream_threw = true;
  }

  if (tree_threw != stream_threw) __builtin_trap();
  if (!tree_threw && !(tree == stream)) __builtin_trap();

  // Same comparison under a small depth cap (truncation + dedup paths).
  if (!tree_threw && size > 0) {
    std::size_t cap = data[0] % 6;
    std::vector<Path> tree_capped = extract_paths(parse_xml(text), cap);
    std::vector<Path> stream_capped = stream_extract_paths(text, cap);
    if (!(tree_capped == stream_capped)) __builtin_trap();
  }
  return 0;
}
