// Quickstart: the xroute public API in ~60 lines.
//
// Builds a 3-broker dissemination network, attaches one publisher (whose
// advertisements derive from the bundled PSD DTD) and two subscribers,
// registers XPath subscriptions, publishes a document and reports who
// received it.
//
//   ./quickstart
#include <iostream>

#include "core/network.hpp"
#include "workload/xml_gen.hpp"
#include "xpath/parser.hpp"

int main() {
  using namespace xroute;

  // A chain of three content-based routers: publisher -> B0-B1-B2.
  Network::Options options;
  options.topology = chain(3);
  options.strategy = RoutingStrategy::with_adv_with_cov();
  options.dtd = psd_dtd();
  Network net(std::move(options));

  // The publisher floods the advertisements derived from its DTD.
  int publisher = net.add_publisher(0);
  net.run();
  std::cout << "publisher advertises " << net.advertisements().size()
            << " path patterns derived from the PSD DTD\n";

  // Subscribers register XPath expressions; they are routed toward the
  // publisher along the advertisement tree.
  int alice = net.add_subscriber(2);
  int bob = net.add_subscriber(1);
  int carol = net.add_subscriber(2);
  net.subscribe(alice, parse_xpe("//reference/refinfo/authors"));
  net.subscribe(alice, parse_xpe("/ProteinDatabase/ProteinEntry/sequence"));
  net.subscribe(bob, parse_xpe("//header/uid"));     // present in every entry
  net.subscribe(carol, parse_xpe("//genetics/codon"));  // optional content
  net.run();

  // Publish a generated document; the edge broker decomposes it into
  // root-to-leaf paths and the network routes it content-based.
  Rng rng(2024);
  XmlGenOptions gen;
  gen.target_bytes = 2048;
  XmlDocument doc = generate_document(psd_dtd(), rng, gen);
  std::cout << "publishing a " << doc.byte_size() << "-byte document with "
            << extract_paths(doc).size() << " distinct paths\n";
  net.publish(publisher, doc);
  net.run();

  auto notified = [&](const char* name, int client) {
    std::cout << name
              << (net.simulator().notifications_of(client) ? "yes" : "no")
              << "\n";
  };
  notified("alice notified: ", alice);  // sequence is mandatory content
  notified("bob notified:   ", bob);    // uid is mandatory content
  notified("carol notified: ", carol);  // codon is optional: content-based
                                        // filtering may legitimately say no

  auto delay = net.stats().delay_summary();
  std::cout << "notification delay: " << delay.mean_ms << " ms (mean over "
            << delay.count << ")\n";
  std::cout << "network traffic: " << net.stats().total_broker_messages()
            << " broker messages, routing state "
            << net.total_prt_size() << " XPEs total\n";
  return 0;
}
