// News dissemination scenario (the paper's motivating workload):
//
// A news agency publishes NITF-like documents into a 7-broker overlay;
// branch offices at the leaves subscribe to the sections they care about.
// The example runs the same workload under two routing strategies and
// contrasts traffic, routing state and delays — the paper's §5 story in
// miniature.
//
//   ./news_dissemination [--docs N] [--subs-per-office N] [--seed S]
#include <iostream>
#include <iterator>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "util/flags.hpp"
#include "workload/xml_gen.hpp"
#include "workload/xpath_gen.hpp"
#include "xpath/parser.hpp"

int main(int argc, char** argv) {
  using namespace xroute;
  Flags flags("news dissemination over a 7-broker overlay");
  flags.define("docs", "20", "number of news documents to publish");
  flags.define("subs-per-office", "40", "XPath subscriptions per office");
  flags.define("seed", "7", "workload seed");
  if (!flags.parse(argc, argv)) return 0;

  const std::size_t docs = flags.get_int("docs");
  const std::size_t subs_each = flags.get_int("subs-per-office");
  const std::uint64_t seed = flags.get_int64("seed");

  Dtd dtd = news_dtd();
  Topology topology = complete_binary_tree(3);  // 7 brokers, 4 leaf offices

  // Branch-office interests: DTD-guided queries plus a few hand-written
  // ones a real office would register.
  XpathGenOptions xopts;
  xopts.count = subs_each * 4;
  xopts.seed = seed;
  xopts.wildcard_prob = 0.15;
  xopts.descendant_prob = 0.2;
  auto queries = generate_xpaths(dtd, xopts);
  const char* curated[] = {
      "/news/head/docdata/urgency",        // wire-priority watchers
      "//hedline/hl1",                     // headline tickers
      "/news/body/body.content//media",    // photo desk
      "//byline/person",                   // attribution tracking
  };

  Rng doc_rng(seed + 1);
  std::vector<XmlDocument> documents;
  XmlGenOptions gen;
  gen.target_bytes = 4096;
  for (std::size_t i = 0; i < docs; ++i) {
    documents.push_back(generate_document(dtd, doc_rng, gen));
  }

  TextTable table({"strategy", "adv msgs", "sub msgs", "pub msgs",
                   "total RTS", "delivered"});
  for (const StrategySpec& spec :
       {StrategySpec{"no-Adv-no-Cov", RoutingStrategy::no_adv_no_cov()},
        StrategySpec{"with-Adv-with-Cov",
                     RoutingStrategy::with_adv_with_cov()}}) {
    Network::Options options;
    options.topology = topology;
    options.strategy = spec.strategy;
    options.dtd = dtd;
    options.seed = seed;
    Network net(std::move(options));

    int agency = net.add_publisher(0);
    net.run();
    auto leaves = topology.leaf_brokers();
    std::vector<int> offices;
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      int office = net.add_subscriber(leaves[i]);
      offices.push_back(office);
      net.subscribe(office, parse_xpe(curated[i % std::size(curated)]));
      for (std::size_t q = 0; q < subs_each; ++q) {
        net.subscribe(office, queries[(i * subs_each + q) % queries.size()]);
      }
    }
    net.run();
    for (const XmlDocument& doc : documents) net.publish(agency, doc);
    net.run();

    std::size_t delivered = 0;
    for (int office : offices) {
      delivered += net.simulator().notifications_of(office);
    }
    table.add_row({spec.name,
                   TextTable::fmt(net.stats().broker_messages(MessageType::kAdvertise)),
                   TextTable::fmt(net.stats().broker_messages(MessageType::kSubscribe)),
                   TextTable::fmt(net.stats().broker_messages(MessageType::kPublish)),
                   TextTable::fmt(net.total_prt_size()),
                   TextTable::fmt(delivered)});
  }
  std::cout << "News dissemination: " << docs << " documents to 4 offices, "
            << subs_each << "+1 subscriptions each\n\n";
  table.print(std::cout);
  std::cout << "\nDeliveries are identical by construction. Covering slashes\n"
               "subscription traffic and routing state; the advertisement\n"
               "flood is a one-off cost that amortises over subscription\n"
               "volume (NEWS derives ~960 advertisements).\n";
  return 0;
}
