// Failover scenario: broker crash-restart with and without state recovery.
//
// A dissemination network keeps routing state (SRT/PRT/client tables) at
// every broker; losing a broker's state silently breaks delivery for the
// subscribers behind it. This example snapshots a transit broker
// (router/snapshot.h), crashes it, and contrasts a recovery restart with
// a cold one.
//
//   ./failover
#include <iostream>

#include "core/network.hpp"
#include "router/snapshot.hpp"
#include "workload/xml_gen.hpp"
#include "xpath/parser.hpp"

int main() {
  using namespace xroute;

  // publisher -> B0 - B1 - B2 <- subscriber
  Network::Options options;
  options.topology = chain(3);
  options.strategy = RoutingStrategy::with_adv_with_cov();
  options.dtd = news_dtd();
  Network net(std::move(options));

  int publisher = net.add_publisher(0);
  int subscriber = net.add_subscriber(2);
  net.run();
  net.subscribe(subscriber, parse_xpe("/news/head/title"));
  net.run();

  Rng rng(99);
  auto publish_one = [&] {
    net.publish(publisher, generate_document(news_dtd(), rng, {}));
    net.run();
    return net.simulator().notifications_of(subscriber);
  };

  std::cout << "steady state:        delivered " << publish_one()
            << " document(s)\n";

  // Operational snapshot of the transit broker B1.
  std::string snapshot = snapshot_to_string(net.simulator().broker(1));
  std::cout << "snapshot of B1:      " << snapshot.size() << " bytes, "
            << net.prt_size(1) << " PRT entries, "
            << net.simulator().broker(1).srt_size() << " SRT entries\n";

  // Crash + recovery restart: routing continues seamlessly.
  net.simulator().restart_broker(1, snapshot);
  std::cout << "after recovery:      delivered " << publish_one()
            << " document(s) total\n";

  // Crash + cold restart: the amnesiac broker drops everything.
  net.simulator().restart_broker(1);
  std::size_t before = net.simulator().notifications_of(subscriber);
  std::size_t after = publish_one();
  std::cout << "after cold restart:  delivered " << after
            << " document(s) total (" << (after - before)
            << " new — routing state was lost)\n";

  std::cout << "\nmoral: snapshot transit brokers, or re-issue the control\n"
               "plane after a restart.\n";
  return 0;
}
