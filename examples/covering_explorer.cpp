// Covering explorer: a close look at the paper's §4 machinery.
//
// Feeds a set of XPEs into a subscription tree, prints the resulting
// covering DAG (tree edges + super pointers), then runs a merge pass and
// shows which mergers the rules produced and at what imperfect degree.
//
//   ./covering_explorer                         # built-in demo set
//   ./covering_explorer --xpes "/a/b,/a/c,/a"   # your own set
#include <iostream>
#include <sstream>

#include "dtd/universe.hpp"
#include "index/merging.hpp"
#include "index/subscription_tree.hpp"
#include "util/flags.hpp"
#include "workload/dtd_corpus.hpp"
#include "xpath/parser.hpp"

namespace {

using namespace xroute;

void print_node(const SubscriptionTree::Node* node, int depth) {
  std::cout << std::string(static_cast<std::size_t>(depth) * 2, ' ')
            << node->xpe.to_string();
  if (node->merger) {
    std::cout << "   [merger of";
    for (const Xpe& original : node->merged_from) {
      std::cout << ' ' << original.to_string();
    }
    std::cout << ']';
  }
  if (!node->super.empty()) {
    std::cout << "   -> also covers:";
    for (const SubscriptionTree::Node* target : node->super) {
      std::cout << ' ' << target->xpe.to_string();
    }
  }
  std::cout << '\n';
  for (const auto& child : node->children) print_node(child.get(), depth + 1);
}

void print_tree(const SubscriptionTree& tree) {
  std::cout << "ROOT  (" << tree.size() << " subscriptions)\n";
  for (const auto& child : tree.root()->children) print_node(child.get(), 1);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("inspect the subscription tree and merging rules");
  flags.define("xpes", "", "comma-separated XPEs (default: a demo set)");
  flags.define("imperfect", "0.1", "max imperfect degree for merging");
  if (!flags.parse(argc, argv)) return 0;

  // The paper's Fig. 4 example set, unless the user supplies one.
  std::vector<std::string> inputs;
  std::string custom = flags.get_string("xpes");
  if (custom.empty()) {
    inputs = {"/news/head",
              "/news/head/title",
              "/news/body/body.content/block/p",
              "/news/body/body.content/block/em",
              "/news/body/body.content/block/a",
              "/news/*/body.content",
              "//block/p",
              "block/p/em",
              "/news/head/docdata/doc-id",
              "/news/head/docdata/urgency"};
  } else {
    std::stringstream ss(custom);
    std::string item;
    while (std::getline(ss, item, ',')) inputs.push_back(item);
  }

  SubscriptionTree tree;
  std::cout << "=== inserting " << inputs.size() << " XPEs ===\n";
  for (const std::string& text : inputs) {
    Xpe xpe = parse_xpe(text);
    auto result = tree.insert(xpe, IfaceId{0});
    std::cout << "  " << text;
    if (!result.was_new) {
      std::cout << "  (duplicate)";
    } else if (result.covered_by_existing) {
      std::cout << "  (covered -> would not be forwarded)";
    } else if (!result.now_covered.empty()) {
      std::cout << "  (covers " << result.now_covered.size()
                << " existing -> they would be unsubscribed)";
    }
    std::cout << '\n';
  }

  std::cout << "\n=== subscription tree (paper Fig. 4 structure) ===\n";
  print_tree(tree);
  std::string invariant = tree.validate();
  std::cout << "invariants: " << (invariant.empty() ? "OK" : invariant) << "\n";

  std::cout << "\n=== merge pass (D_imperfect <= "
            << flags.get_double("imperfect") << ") ===\n";
  PathUniverse universe(news_dtd());
  MergeOptions mopts;
  mopts.max_imperfect_degree = flags.get_double("imperfect");
  mopts.rule_general = true;
  MergeEngine engine(&universe, mopts);
  MergeReport report = engine.run(tree);
  if (report.merges.empty()) {
    std::cout << "no rule applied within the tolerance\n";
  }
  for (const MergeRecord& record : report.merges) {
    std::cout << "  merged";
    for (const Xpe& original : record.originals) {
      std::cout << ' ' << original.to_string();
    }
    std::cout << "  =>  " << record.merger.to_string()
              << "   (D_imperfect = " << record.d_imperfect << ")\n";
  }

  std::cout << "\n=== tree after merging ===\n";
  print_tree(tree);
  return 0;
}
