// Protein-database feed scenario.
//
// A bioinformatics data provider streams PSD-like records through a WAN
// overlay (PlanetLab latency profile); research groups subscribe to the
// record fields they mirror. Demonstrates document-size effects on
// notification delay and the covering technique's effect on per-broker
// routing state — the paper's Fig. 10 setting as an application.
//
//   ./protein_feed [--records N] [--groups N] [--record-bytes N]
#include <iostream>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "util/flags.hpp"
#include "workload/xml_gen.hpp"
#include "xpath/parser.hpp"

int main(int argc, char** argv) {
  using namespace xroute;
  Flags flags("protein record dissemination over a WAN overlay");
  flags.define("records", "30", "number of records to publish");
  flags.define("groups", "6", "number of subscribing research groups");
  flags.define("record-bytes", "10240", "serialized record size");
  flags.define("seed", "11", "workload seed");
  if (!flags.parse(argc, argv)) return 0;

  const std::size_t records = flags.get_int("records");
  const std::size_t groups = flags.get_int("groups");
  const std::size_t record_bytes = flags.get_int("record-bytes");
  const std::uint64_t seed = flags.get_int64("seed");

  // Each group's mirror interest, from broad to narrow.
  const char* interests[] = {
      "/ProteinDatabase/ProteinEntry",      // full mirror
      "//sequence",                         // sequence-only mirror
      "//reference/refinfo",                // literature graph
      "//organism/source",                  // taxonomy service
      "//feature/seq-spec",                 // feature annotation pipeline
      "//genetics",                         // gene cross-references
  };

  Network::Options options;
  options.topology = star(groups);  // provider hub + one broker per group
  options.profile = LatencyProfile::kPlanetLab;
  options.strategy = RoutingStrategy::with_adv_with_cov();
  options.dtd = psd_dtd();
  options.seed = seed;
  Network net(std::move(options));

  int provider = net.add_publisher(0);
  net.run();
  std::vector<int> mirrors;
  for (std::size_t g = 0; g < groups; ++g) {
    int mirror = net.add_subscriber(static_cast<int>(g + 1));
    mirrors.push_back(mirror);
    net.subscribe(mirror, parse_xpe(interests[g % std::size(interests)]));
  }
  net.run();

  Rng rng(seed);
  XmlGenOptions gen;
  gen.target_bytes = record_bytes;
  for (std::size_t r = 0; r < records; ++r) {
    net.publish(provider, generate_document(psd_dtd(), rng, gen));
  }
  net.run();

  std::cout << "Protein feed: " << records << " records ("
            << record_bytes / 1024 << " KB each) to " << groups
            << " mirrors over a WAN star\n\n";
  TextTable table({"mirror", "interest", "records received"});
  for (std::size_t g = 0; g < groups; ++g) {
    table.add_row({"group-" + std::to_string(g),
                   interests[g % std::size(interests)],
                   TextTable::fmt(net.simulator().notifications_of(mirrors[g]))});
  }
  table.print(std::cout);

  auto delay = net.stats().delay_summary();
  std::cout << "\nnotification delay (ms): mean " << TextTable::fmt(delay.mean_ms)
            << ", min " << TextTable::fmt(delay.min_ms) << ", max "
            << TextTable::fmt(delay.max_ms) << "\n";
  std::cout << "hub broker routing table: " << net.prt_size(0)
            << " XPEs after covering (for " << groups << " group interests)\n";
  return 0;
}
