// xroutectl — command-line front end to the xroute library.
//
//   xroutectl parse '<xpe>'                  parse + echo an XPE
//   xroutectl covers '<xpe1>' '<xpe2>'       does xpe1 cover xpe2?
//   xroutectl derive <dtd-file> [root]       advertisements from a DTD
//   xroutectl match <xml-file> '<xpe>'...    which XPEs match the document
//   xroutectl paths <xml-file>               root-to-leaf paths of a document
//   xroutectl universe <dtd-file> [depth]    conforming paths of a DTD
//   xroutectl faultsim <plan-file>           run a fault plan, report
//                                            delivery equality + recovery
//   xroutectl trace <plan-file> [out.json]   run a fault plan with the causal
//                                            tracer on: span summary, trace-vs-
//                                            simulator delivery verdict, Chrome
//                                            trace file (--dump <id> prints one
//                                            trace as JSON)
//   xroutectl metrics <plan-file>            run a fault plan and dump the
//                                            metrics registry as JSON
//
// Exit code: 0 on success (for `covers`: 0 = covers, 1 = does not; for
// `faultsim`: 0 = delivery equal to the fault-free reference, 1 = not; for
// `trace`: 0 = trace reconstruction matches the simulator, 1 = not).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "adv/derive.hpp"
#include "dtd/parser.hpp"
#include "dtd/universe.hpp"
#include "match/covering.hpp"
#include "match/pub_match.hpp"
#include "net/fault.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "xml/parser.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

namespace {

using namespace xroute;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int cmd_parse(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("usage: parse '<xpe>'");
  Xpe xpe = parse_xpe(args[0]);
  std::cout << xpe.to_string() << "\n";
  std::cout << "  steps: " << xpe.size()
            << (xpe.relative() ? ", relative" : ", absolute")
            << (xpe.anchored() ? ", anchored" : ", floating")
            << (xpe.has_descendant() ? ", has //" : "")
            << (xpe.has_wildcard() ? ", has *" : "")
            << (xpe.has_predicates() ? ", has predicates" : "") << "\n";
  return 0;
}

int cmd_covers(const std::vector<std::string>& args) {
  if (args.size() != 2) throw std::runtime_error("usage: covers '<s1>' '<s2>'");
  Xpe s1 = parse_xpe(args[0]);
  Xpe s2 = parse_xpe(args[1]);
  bool result = covers(s1, s2);
  std::cout << s1.to_string() << (result ? "  COVERS  " : "  does not cover  ")
            << s2.to_string() << "\n";
  return result ? 0 : 1;
}

int cmd_derive(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("usage: derive <dtd-file> [root]");
  Dtd dtd = parse_dtd(read_file(args[0]));
  if (args.size() > 1) dtd.set_root(args[1]);
  auto derived = derive_advertisements(dtd);
  for (const Advertisement& a : derived.advertisements) {
    std::cout << a.to_string() << "\n";
  }
  std::cerr << derived.advertisements.size() << " advertisements ("
            << derived.repaired << " from the repair pass"
            << (derived.truncated ? ", TRUNCATED" : "") << ")\n";
  return 0;
}

int cmd_match(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    throw std::runtime_error("usage: match <xml-file> '<xpe>' ...");
  }
  XmlDocument doc = parse_xml(read_file(args[0]));
  auto paths = extract_paths(doc);
  // Parse the XPEs first: parsing interns their element names, and the
  // path snapshot below uses read-only lookup (unseen names would map to
  // the never-matching sentinel if taken before the XPEs exist).
  std::vector<Xpe> xpes;
  for (std::size_t i = 1; i < args.size(); ++i) xpes.push_back(parse_xpe(args[i]));
  // Intern once; the match loop below then compares symbol ids.
  std::vector<InternedPath> interned(paths.begin(), paths.end());
  for (const Xpe& xpe : xpes) {
    bool hit = false;
    for (const InternedPath& p : interned) {
      if (matches(p, xpe)) {
        hit = true;
        break;
      }
    }
    std::cout << (hit ? "MATCH     " : "no match  ") << xpe.to_string()
              << "\n";
  }
  return 0;
}

int cmd_paths(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("usage: paths <xml-file>");
  XmlDocument doc = parse_xml(read_file(args[0]));
  for (const Path& p : extract_paths(doc)) std::cout << p.to_string() << "\n";
  return 0;
}

int cmd_universe(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("usage: universe <dtd-file> [depth]");
  Dtd dtd = parse_dtd(read_file(args[0]));
  PathUniverse::Options options;
  if (args.size() > 1) options.max_depth = std::stoul(args[1]);
  PathUniverse universe(dtd, options);
  for (const Path& p : universe.paths()) std::cout << p.to_string() << "\n";
  if (universe.truncated()) std::cerr << "(truncated)\n";
  return 0;
}

/// One faultsim run over the plan's scenario; `faulted` toggles the fault
/// plan itself (off = the clean reference the verdict compares against).
struct FaultSimResult {
  std::vector<std::set<std::uint64_t>> delivered;
  Simulator::QuiesceReport report;
  std::size_t duplicates = 0;
  std::size_t retransmits = 0;
  std::size_t frames_dropped = 0;
  std::size_t flushed = 0;
  std::size_t restarts = 0;
  std::size_t resyncs = 0;
  std::vector<double> resync_ms;
};

/// Builds the plan's scenario on `sim` and runs it to quiescence: the
/// shared workload behind faultsim, trace and metrics (with `traced` the
/// causal tracer is on for the whole run).
struct ScenarioRun {
  std::vector<int> subscribers;
  int publisher = -1;
  Simulator::QuiesceReport report;
};

ScenarioRun run_scenario(Simulator& sim, const FaultPlan& plan, bool faulted,
                         bool traced) {
  Rng rng(plan.seed);
  Topology topology;
  if (plan.topology == "tree") {
    topology = complete_binary_tree(plan.topology_size);
  } else if (plan.topology == "chain") {
    topology = chain(plan.topology_size);
  } else if (plan.topology == "star") {
    topology = star(plan.topology_size);
  } else {
    topology = random_connected(plan.topology_size, 0, rng);
  }

  Broker::Config config;
  config.use_advertisements = false;
  for (std::size_t i = 0; i < topology.num_brokers; ++i) sim.add_broker(config);
  for (auto [a, b] : topology.edges) sim.connect(a, b, LinkConfig{});
  if (faulted) sim.apply_fault_plan(plan);
  if (traced) sim.enable_tracing();

  const char* xpes[] = {"/a", "/a/b", "//c", "/d//e", "/a//c"};
  ScenarioRun run;
  for (std::size_t i = 0; i < plan.subscribers; ++i) {
    int client =
        sim.attach_client(static_cast<int>(rng.index(topology.num_brokers)));
    sim.subscribe(client, parse_xpe(xpes[i % 5]));
    run.subscribers.push_back(client);
  }
  run.publisher =
      sim.attach_client(static_cast<int>(rng.index(topology.num_brokers)));
  sim.run_limited(100000);

  const char* paths[] = {"/a/b", "/a/b/c", "/d/x/e", "/q", "/a"};
  for (std::size_t i = 0; i < plan.documents; ++i) {
    sim.publish_paths(run.publisher, {parse_path(paths[i % 5])}, 200);
  }
  // Bounded drain: scheduled crash events fire at their plan times during
  // this run, possibly mid-traffic (in-flight publications then die with
  // the broker — that is the fault model, and the verdict will say so).
  run.report = sim.run_until_quiescent(1000000);
  return run;
}

FaultSimResult run_faultsim(const FaultPlan& plan, bool faulted) {
  Simulator sim(Simulator::Options{0.0});
  ScenarioRun run = run_scenario(sim, plan, faulted, /*traced=*/false);

  FaultSimResult result;
  result.report = run.report;
  for (int client : run.subscribers) {
    result.delivered.push_back(sim.delivered_docs(client));
  }
  const NetworkStats& stats = sim.stats();
  result.duplicates = stats.duplicate_notifications();
  result.retransmits = stats.retransmits();
  result.frames_dropped = stats.frames_dropped();
  result.flushed = stats.events_flushed_on_crash();
  result.restarts = stats.broker_restarts();
  result.resyncs = stats.resyncs_completed();
  result.resync_ms = stats.resync_durations_ms();
  return result;
}

int cmd_faultsim(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("usage: faultsim <plan-file>");
  std::ifstream in(args[0]);
  if (!in) throw std::runtime_error("cannot open " + args[0]);
  FaultPlan plan = parse_fault_plan(in);

  FaultSimResult reference = run_faultsim(plan, /*faulted=*/false);
  FaultSimResult faulted = run_faultsim(plan, /*faulted=*/true);

  std::cout << "topology " << plan.topology << " " << plan.topology_size
            << ", " << plan.subscribers << " subscribers, " << plan.documents
            << " documents, seed " << plan.seed << "\n";
  std::cout << "faulted run: " << faulted.report.processed << " events, "
            << "quiesced at " << faulted.report.last_activity << " ms"
            << (faulted.report.quiesced ? "" : " (EVENT BUDGET EXHAUSTED)")
            << "\n";
  std::cout << "  frames dropped " << faulted.frames_dropped
            << ", retransmits " << faulted.retransmits << ", flushed on crash "
            << faulted.flushed << "\n";
  std::cout << "  restarts " << faulted.restarts << ", resyncs "
            << faulted.resyncs;
  for (double ms : faulted.resync_ms) std::cout << " (" << ms << " ms)";
  std::cout << "\n";

  bool equal = reference.delivered == faulted.delivered &&
               faulted.duplicates == 0;
  for (std::size_t i = 0; i < reference.delivered.size(); ++i) {
    if (reference.delivered[i] != faulted.delivered[i]) {
      std::cout << "  subscriber " << i << ": reference "
                << reference.delivered[i].size() << " docs, faulted "
                << faulted.delivered[i].size() << " docs\n";
    }
  }
  if (faulted.duplicates > 0) {
    std::cout << "  " << faulted.duplicates << " duplicate notifications\n";
  }
  std::cout << "delivery: " << (equal ? "EQUAL" : "MISMATCH")
            << " (vs fault-free reference)\n";
  return equal ? 0 : 1;
}

int cmd_trace(const std::vector<std::string>& args) {
#if !XROUTE_TRACING_ENABLED
  (void)args;
  std::cerr << "trace: tracing was compiled out (-DXROUTE_TRACING=OFF)\n";
  return 2;
#else
  if (args.empty()) {
    throw std::runtime_error(
        "usage: trace <plan-file> [chrome-out.json] [--dump <trace-id>]");
  }
  std::string chrome_out;
  std::uint64_t dump_trace = 0;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--dump") {
      if (++i >= args.size()) throw std::runtime_error("--dump needs an id");
      dump_trace = std::stoull(args[i]);
    } else {
      chrome_out = args[i];
    }
  }
  std::ifstream in(args[0]);
  if (!in) throw std::runtime_error("cannot open " + args[0]);
  FaultPlan plan = parse_fault_plan(in);

  Simulator sim(Simulator::Options{0.0});
  ScenarioRun run = run_scenario(sim, plan, /*faulted=*/true, /*traced=*/true);
  const Tracer& tracer = *sim.tracer();

  std::size_t kind_counts[10] = {};
  std::size_t retransmits = 0, dropped = 0;
  for (const Span& span : tracer.spans()) {
    ++kind_counts[static_cast<std::size_t>(span.kind)];
    if (span.retransmit) ++retransmits;
    if (span.dropped) ++dropped;
  }
  std::cout << tracer.trace_count() << " traces, " << tracer.spans().size()
            << " spans (quiesced at " << run.report.last_activity << " ms)\n";
  const SpanKind kinds[] = {SpanKind::kInject, SpanKind::kEnqueue,
                            SpanKind::kLink,   SpanKind::kBroker,
                            SpanKind::kDeliver};
  for (SpanKind kind : kinds) {
    std::cout << "  " << to_string(kind) << " "
              << kind_counts[static_cast<std::size_t>(kind)];
  }
  std::cout << "\n  retransmit attempts " << retransmits << ", dropped "
            << dropped << "\n";

  // The trace is only worth exporting if it is a faithful witness:
  // reconstruct every subscriber's delivery set from deliver spans and
  // hold it against the simulator's records.
  std::map<int, std::set<std::uint64_t>> from_trace;
  for (const Span& span : tracer.spans()) {
    if (span.kind == SpanKind::kDeliver && !span.duplicate) {
      from_trace[span.client].insert(span.doc_id);
    }
  }
  bool faithful = true;
  for (int client : run.subscribers) {
    if (from_trace[client] != sim.delivered_docs(client)) {
      faithful = false;
      std::cout << "  subscriber client " << client << ": trace says "
                << from_trace[client].size() << " docs, simulator "
                << sim.delivered_docs(client).size() << "\n";
    }
  }
  std::cout << "trace reconstruction: " << (faithful ? "EQUAL" : "MISMATCH")
            << " (vs simulator delivery records)\n";

  if (!chrome_out.empty()) {
    std::ofstream out(chrome_out);
    if (!out) throw std::runtime_error("cannot write " + chrome_out);
    write_chrome_trace(tracer, out);
    std::cout << "chrome trace written to " << chrome_out
              << " (load in about:tracing or ui.perfetto.dev)\n";
  }
  if (dump_trace != 0) write_trace_json(tracer, dump_trace, std::cout);
  return faithful ? 0 : 1;
#endif
}

int cmd_metrics(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("usage: metrics <plan-file>");
  std::ifstream in(args[0]);
  if (!in) throw std::runtime_error("cannot open " + args[0]);
  FaultPlan plan = parse_fault_plan(in);

  Simulator sim(Simulator::Options{0.0});
  run_scenario(sim, plan, /*faulted=*/true, /*traced=*/false);
  sim.stats().registry().write_json(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::cerr << "usage: xroutectl <parse|covers|derive|match|paths|universe|"
              << "faultsim|trace|metrics> ...\n";
    return 2;
  }
  std::string command = args[0];
  args.erase(args.begin());
  try {
    if (command == "parse") return cmd_parse(args);
    if (command == "covers") return cmd_covers(args);
    if (command == "derive") return cmd_derive(args);
    if (command == "match") return cmd_match(args);
    if (command == "paths") return cmd_paths(args);
    if (command == "universe") return cmd_universe(args);
    if (command == "faultsim") return cmd_faultsim(args);
    if (command == "trace") return cmd_trace(args);
    if (command == "metrics") return cmd_metrics(args);
    std::cerr << "unknown command: " << command << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
