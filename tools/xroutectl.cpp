// xroutectl — command-line front end to the xroute library.
//
//   xroutectl parse '<xpe>'                  parse + echo an XPE
//   xroutectl covers '<xpe1>' '<xpe2>'       does xpe1 cover xpe2?
//   xroutectl derive <dtd-file> [root]       advertisements from a DTD
//   xroutectl match <xml-file> '<xpe>'...    which XPEs match the document
//   xroutectl paths <xml-file>               root-to-leaf paths of a document
//   xroutectl universe <dtd-file> [depth]    conforming paths of a DTD
//
// Exit code: 0 on success (for `covers`: 0 = covers, 1 = does not).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "adv/derive.hpp"
#include "dtd/parser.hpp"
#include "dtd/universe.hpp"
#include "match/covering.hpp"
#include "match/pub_match.hpp"
#include "util/error.hpp"
#include "xml/parser.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

namespace {

using namespace xroute;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int cmd_parse(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("usage: parse '<xpe>'");
  Xpe xpe = parse_xpe(args[0]);
  std::cout << xpe.to_string() << "\n";
  std::cout << "  steps: " << xpe.size()
            << (xpe.relative() ? ", relative" : ", absolute")
            << (xpe.anchored() ? ", anchored" : ", floating")
            << (xpe.has_descendant() ? ", has //" : "")
            << (xpe.has_wildcard() ? ", has *" : "")
            << (xpe.has_predicates() ? ", has predicates" : "") << "\n";
  return 0;
}

int cmd_covers(const std::vector<std::string>& args) {
  if (args.size() != 2) throw std::runtime_error("usage: covers '<s1>' '<s2>'");
  Xpe s1 = parse_xpe(args[0]);
  Xpe s2 = parse_xpe(args[1]);
  bool result = covers(s1, s2);
  std::cout << s1.to_string() << (result ? "  COVERS  " : "  does not cover  ")
            << s2.to_string() << "\n";
  return result ? 0 : 1;
}

int cmd_derive(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("usage: derive <dtd-file> [root]");
  Dtd dtd = parse_dtd(read_file(args[0]));
  if (args.size() > 1) dtd.set_root(args[1]);
  auto derived = derive_advertisements(dtd);
  for (const Advertisement& a : derived.advertisements) {
    std::cout << a.to_string() << "\n";
  }
  std::cerr << derived.advertisements.size() << " advertisements ("
            << derived.repaired << " from the repair pass"
            << (derived.truncated ? ", TRUNCATED" : "") << ")\n";
  return 0;
}

int cmd_match(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    throw std::runtime_error("usage: match <xml-file> '<xpe>' ...");
  }
  XmlDocument doc = parse_xml(read_file(args[0]));
  auto paths = extract_paths(doc);
  // Parse the XPEs first: parsing interns their element names, and the
  // path snapshot below uses read-only lookup (unseen names would map to
  // the never-matching sentinel if taken before the XPEs exist).
  std::vector<Xpe> xpes;
  for (std::size_t i = 1; i < args.size(); ++i) xpes.push_back(parse_xpe(args[i]));
  // Intern once; the match loop below then compares symbol ids.
  std::vector<InternedPath> interned(paths.begin(), paths.end());
  for (const Xpe& xpe : xpes) {
    bool hit = false;
    for (const InternedPath& p : interned) {
      if (matches(p, xpe)) {
        hit = true;
        break;
      }
    }
    std::cout << (hit ? "MATCH     " : "no match  ") << xpe.to_string()
              << "\n";
  }
  return 0;
}

int cmd_paths(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("usage: paths <xml-file>");
  XmlDocument doc = parse_xml(read_file(args[0]));
  for (const Path& p : extract_paths(doc)) std::cout << p.to_string() << "\n";
  return 0;
}

int cmd_universe(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("usage: universe <dtd-file> [depth]");
  Dtd dtd = parse_dtd(read_file(args[0]));
  PathUniverse::Options options;
  if (args.size() > 1) options.max_depth = std::stoul(args[1]);
  PathUniverse universe(dtd, options);
  for (const Path& p : universe.paths()) std::cout << p.to_string() << "\n";
  if (universe.truncated()) std::cerr << "(truncated)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::cerr << "usage: xroutectl <parse|covers|derive|match|paths|universe>"
              << " ...\n";
    return 2;
  }
  std::string command = args[0];
  args.erase(args.begin());
  try {
    if (command == "parse") return cmd_parse(args);
    if (command == "covers") return cmd_covers(args);
    if (command == "derive") return cmd_derive(args);
    if (command == "match") return cmd_match(args);
    if (command == "paths") return cmd_paths(args);
    if (command == "universe") return cmd_universe(args);
    std::cerr << "unknown command: " << command << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
