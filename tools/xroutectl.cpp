// xroutectl — command-line front end to the xroute library.
//
// Library commands (in-process):
//
//   xroutectl parse '<xpe>'                  parse + echo an XPE
//   xroutectl covers '<xpe1>' '<xpe2>'       does xpe1 cover xpe2?
//   xroutectl derive <dtd-file> [root]       advertisements from a DTD
//   xroutectl match <xml-file> '<xpe>'...    which XPEs match the document
//   xroutectl paths <xml-file>               root-to-leaf paths of a document
//   xroutectl universe <dtd-file> [depth]    conforming paths of a DTD
//   xroutectl faultsim <plan-file>           run a fault plan, report
//                                            delivery equality + recovery
//   xroutectl trace <plan-file> [out.json]   run a fault plan with the causal
//                                            tracer on: span summary, trace-vs-
//                                            simulator delivery verdict, Chrome
//                                            trace file (--dump <id> prints one
//                                            trace as JSON)
//   xroutectl metrics <plan-file>            run a fault plan and dump the
//                                            metrics registry as JSON
//
// Network commands (real TCP, src/transport):
//
//   xroutectl serve <overlay-file> <id>      run one broker of the overlay
//                                            until SIGINT/SIGTERM; prints its
//                                            metrics JSON on shutdown
//                                            (--edge-port P hosts an edge
//                                            session layer beside the broker)
//   xroutectl connect <host> <port>          handshake with a broker and exit
//   xroutectl sub <host> <port> '<xpe>'...   subscribe, print deliveries
//                                            (--count N: exit after N docs)
//   xroutectl pub <host> <port> <xml>...     publish documents' paths
//   xroutectl swarm <host> <edge-port>       drive a leased client swarm
//                                            against an edge session layer
//
// Overlay file format (one declaration per line, '#' comments):
//
//   broker <id> <host> <port>
//   link <a> <b>
//   option <key> <value>      broker knob (router/broker_options.hpp),
//                             e.g. 'option threads 4', 'option merging on'
//
// Every broker of one overlay is served from the same file; the lower id
// of each link dials the higher, so a link is exactly one TCP connection.
// `serve --threads N` and `--option key=value` override the file's knobs;
// all three spellings run through the same apply_broker_option() parser.
//
// Exit code: 0 on success (for `covers`: 0 = covers, 1 = does not; for
// `faultsim`: 0 = delivery equal to the fault-free reference, 1 = not; for
// `trace`: 0 = trace reconstruction matches the simulator, 1 = not; for
// `connect`: 0 = handshake completed, 1 = not). Usage errors — unknown
// command, missing arguments — print the usage text and exit 2.
#include <chrono>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "adv/derive.hpp"
#include "dtd/parser.hpp"
#include "edge/edge_server.hpp"
#include "edge/swarm.hpp"
#include "dtd/universe.hpp"
#include "match/covering.hpp"
#include "match/pub_match.hpp"
#include "net/fault.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "obs/export.hpp"
#include "router/broker_options.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "transport/broker_node.hpp"
#include "transport/client.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "xml/parser.hpp"
#include "xml/paths.hpp"
#include "xml/stream_parser.hpp"
#include "xpath/parser.hpp"

namespace {

using namespace xroute;

const char kUsage[] =
    "usage: xroutectl <command> [args]\n"
    "\n"
    "library commands:\n"
    "  parse '<xpe>'                 parse + echo an XPE\n"
    "  covers '<xpe1>' '<xpe2>'      does xpe1 cover xpe2?\n"
    "  derive <dtd-file> [root]      advertisements from a DTD\n"
    "  match <xml-file> '<xpe>'...   which XPEs match the document\n"
    "  paths <xml-file>              root-to-leaf paths of a document\n"
    "  universe <dtd-file> [depth]   conforming paths of a DTD\n"
    "  faultsim <plan-file>          fault plan -> delivery verdict\n"
    "  trace <plan-file> [out.json]  fault plan under the causal tracer\n"
    "  metrics <plan-file>           fault plan -> metrics JSON\n"
    "\n"
    "network commands:\n"
    "  scenario run <file>... [--out FILE]\n"
    "                                chaos scenarios over live brokers;\n"
    "                                writes BENCH_scenarios.json\n"
    "  serve <overlay-file> <id> [--advertisements] [--threads N]\n"
    "        [--option key=value] [--incarnation N] [--join]\n"
    "        [--graceful-leave] [--edge-port P] [--edge-reactors N]\n"
    "        [--lease-ttl MS]\n"
    "                                run one broker until SIGINT/SIGTERM;\n"
    "                                --edge-port also hosts the edge session\n"
    "                                layer (leased clients, port 0 = pick)\n"
    "  connect <host> <port>         handshake with a broker and exit\n"
    "  sub <host> <port> '<xpe>'... [--count N]\n"
    "                                subscribe and print deliveries\n"
    "  pub <host> <port> <xml-file>... [--first-doc-id N] [--tree]\n"
    "                                publish documents' paths (--tree uses\n"
    "                                the DOM parser instead of streaming)\n"
    "  swarm <host> <edge-port> [--clients N] [--loops K] [--xpe EXPR]...\n"
    "        [--duration MS] [--heartbeat MS]\n"
    "                                simulate N leased edge clients from K\n"
    "                                event loops; each subscribes to every\n"
    "                                --xpe and reports deliveries on exit\n";

/// Argument problems: main prints the usage text and exits 2.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int cmd_parse(const std::vector<std::string>& args) {
  if (args.empty()) throw UsageError("parse: missing '<xpe>' argument");
  Xpe xpe = parse_xpe(args[0]);
  std::cout << xpe.to_string() << "\n";
  std::cout << "  steps: " << xpe.size()
            << (xpe.relative() ? ", relative" : ", absolute")
            << (xpe.anchored() ? ", anchored" : ", floating")
            << (xpe.has_descendant() ? ", has //" : "")
            << (xpe.has_wildcard() ? ", has *" : "")
            << (xpe.has_predicates() ? ", has predicates" : "") << "\n";
  return 0;
}

int cmd_covers(const std::vector<std::string>& args) {
  if (args.size() != 2) throw UsageError("covers: needs exactly two XPEs");
  Xpe s1 = parse_xpe(args[0]);
  Xpe s2 = parse_xpe(args[1]);
  bool result = covers(s1, s2);
  std::cout << s1.to_string() << (result ? "  COVERS  " : "  does not cover  ")
            << s2.to_string() << "\n";
  return result ? 0 : 1;
}

int cmd_derive(const std::vector<std::string>& args) {
  if (args.empty()) throw UsageError("derive: missing <dtd-file> argument");
  Dtd dtd = parse_dtd(read_file(args[0]));
  if (args.size() > 1) dtd.set_root(args[1]);
  auto derived = derive_advertisements(dtd);
  for (const Advertisement& a : derived.advertisements) {
    std::cout << a.to_string() << "\n";
  }
  std::cerr << derived.advertisements.size() << " advertisements ("
            << derived.repaired << " from the repair pass"
            << (derived.truncated ? ", TRUNCATED" : "") << ")\n";
  return 0;
}

int cmd_match(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    throw UsageError("match: needs <xml-file> and at least one XPE");
  }
  XmlDocument doc = parse_xml(read_file(args[0]));
  auto paths = extract_paths(doc);
  // Parse the XPEs first: parsing interns their element names, and the
  // path snapshot below uses read-only lookup (unseen names would map to
  // the never-matching sentinel if taken before the XPEs exist).
  std::vector<Xpe> xpes;
  for (std::size_t i = 1; i < args.size(); ++i) xpes.push_back(parse_xpe(args[i]));
  // Intern once; the match loop below then compares symbol ids.
  std::vector<InternedPath> interned(paths.begin(), paths.end());
  for (const Xpe& xpe : xpes) {
    bool hit = false;
    for (const InternedPath& p : interned) {
      if (matches(p, xpe)) {
        hit = true;
        break;
      }
    }
    std::cout << (hit ? "MATCH     " : "no match  ") << xpe.to_string()
              << "\n";
  }
  return 0;
}

int cmd_paths(const std::vector<std::string>& args) {
  if (args.empty()) throw UsageError("paths: missing <xml-file> argument");
  XmlDocument doc = parse_xml(read_file(args[0]));
  for (const Path& p : extract_paths(doc)) std::cout << p.to_string() << "\n";
  return 0;
}

int cmd_universe(const std::vector<std::string>& args) {
  if (args.empty()) throw UsageError("universe: missing <dtd-file> argument");
  Dtd dtd = parse_dtd(read_file(args[0]));
  PathUniverse::Options options;
  if (args.size() > 1) options.max_depth = std::stoul(args[1]);
  PathUniverse universe(dtd, options);
  for (const Path& p : universe.paths()) std::cout << p.to_string() << "\n";
  if (universe.truncated()) std::cerr << "(truncated)\n";
  return 0;
}

/// One faultsim run over the plan's scenario; `faulted` toggles the fault
/// plan itself (off = the clean reference the verdict compares against).
struct FaultSimResult {
  std::vector<std::set<std::uint64_t>> delivered;
  Simulator::QuiesceReport report;
  std::size_t duplicates = 0;
  std::size_t retransmits = 0;
  std::size_t frames_dropped = 0;
  std::size_t flushed = 0;
  std::size_t restarts = 0;
  std::size_t resyncs = 0;
  std::vector<double> resync_ms;
};

/// Builds the plan's scenario on `sim` and runs it to quiescence: the
/// shared workload behind faultsim, trace and metrics (with `traced` the
/// causal tracer is on for the whole run).
struct ScenarioRun {
  std::vector<int> subscribers;
  int publisher = -1;
  Simulator::QuiesceReport report;
};

ScenarioRun run_scenario(Simulator& sim, const FaultPlan& plan, bool faulted,
                         bool traced) {
  Rng rng(plan.seed);
  Topology topology;
  if (plan.topology == "tree") {
    topology = complete_binary_tree(plan.topology_size);
  } else if (plan.topology == "chain") {
    topology = chain(plan.topology_size);
  } else if (plan.topology == "star") {
    topology = star(plan.topology_size);
  } else {
    topology = random_connected(plan.topology_size, 0, rng);
  }

  Broker::Config config;
  config.use_advertisements = false;
  for (const auto& [key, value] : plan.broker_options) {
    // Re-validated here (the plan parser already checked) so a plan built
    // programmatically fails just as loudly as a file-driven one.
    if (std::string err = apply_broker_option(config, key, value);
        !err.empty()) {
      throw std::runtime_error("fault plan option: " + err);
    }
  }
  for (std::size_t i = 0; i < topology.num_brokers; ++i) sim.add_broker(config);
  for (auto [a, b] : topology.edges) sim.connect(a, b, LinkConfig{});
  if (faulted) sim.apply_fault_plan(plan);
  if (traced) sim.enable_tracing();

  const char* xpes[] = {"/a", "/a/b", "//c", "/d//e", "/a//c"};
  ScenarioRun run;
  for (std::size_t i = 0; i < plan.subscribers; ++i) {
    int client =
        sim.attach_client(static_cast<int>(rng.index(topology.num_brokers)));
    sim.subscribe(client, parse_xpe(xpes[i % 5]));
    run.subscribers.push_back(client);
  }
  run.publisher =
      sim.attach_client(static_cast<int>(rng.index(topology.num_brokers)));
  sim.run_limited(100000);

  const char* paths[] = {"/a/b", "/a/b/c", "/d/x/e", "/q", "/a"};
  for (std::size_t i = 0; i < plan.documents; ++i) {
    sim.publish_paths(run.publisher, {parse_path(paths[i % 5])}, 200);
  }
  // Bounded drain: scheduled crash events fire at their plan times during
  // this run, possibly mid-traffic (in-flight publications then die with
  // the broker — that is the fault model, and the verdict will say so).
  run.report = sim.run_until_quiescent(1000000);
  return run;
}

FaultSimResult run_faultsim(const FaultPlan& plan, bool faulted) {
  Simulator sim(Simulator::Options{0.0});
  ScenarioRun run = run_scenario(sim, plan, faulted, /*traced=*/false);

  FaultSimResult result;
  result.report = run.report;
  for (int client : run.subscribers) {
    result.delivered.push_back(sim.delivered_docs(client));
  }
  const NetworkStats& stats = sim.stats();
  result.duplicates = stats.duplicate_notifications();
  result.retransmits = stats.retransmits();
  result.frames_dropped = stats.frames_dropped();
  result.flushed = stats.events_flushed_on_crash();
  result.restarts = stats.broker_restarts();
  result.resyncs = stats.resyncs_completed();
  result.resync_ms = stats.resync_durations_ms();
  return result;
}

int cmd_faultsim(const std::vector<std::string>& args) {
  if (args.empty()) throw UsageError("faultsim: missing <plan-file> argument");
  std::ifstream in(args[0]);
  if (!in) throw std::runtime_error("cannot open " + args[0]);
  FaultPlan plan = parse_fault_plan(in);

  FaultSimResult reference = run_faultsim(plan, /*faulted=*/false);
  FaultSimResult faulted = run_faultsim(plan, /*faulted=*/true);

  std::cout << "topology " << plan.topology << " " << plan.topology_size
            << ", " << plan.subscribers << " subscribers, " << plan.documents
            << " documents, seed " << plan.seed << "\n";
  std::cout << "faulted run: " << faulted.report.processed << " events, "
            << "quiesced at " << faulted.report.last_activity << " ms"
            << (faulted.report.quiesced ? "" : " (EVENT BUDGET EXHAUSTED)")
            << "\n";
  std::cout << "  frames dropped " << faulted.frames_dropped
            << ", retransmits " << faulted.retransmits << ", flushed on crash "
            << faulted.flushed << "\n";
  std::cout << "  restarts " << faulted.restarts << ", resyncs "
            << faulted.resyncs;
  for (double ms : faulted.resync_ms) std::cout << " (" << ms << " ms)";
  std::cout << "\n";

  bool equal = reference.delivered == faulted.delivered &&
               faulted.duplicates == 0;
  for (std::size_t i = 0; i < reference.delivered.size(); ++i) {
    if (reference.delivered[i] != faulted.delivered[i]) {
      std::cout << "  subscriber " << i << ": reference "
                << reference.delivered[i].size() << " docs, faulted "
                << faulted.delivered[i].size() << " docs\n";
    }
  }
  if (faulted.duplicates > 0) {
    std::cout << "  " << faulted.duplicates << " duplicate notifications\n";
  }
  std::cout << "delivery: " << (equal ? "EQUAL" : "MISMATCH")
            << " (vs fault-free reference)\n";
  return equal ? 0 : 1;
}

int cmd_trace(const std::vector<std::string>& args) {
#if !XROUTE_TRACING_ENABLED
  (void)args;
  std::cerr << "trace: tracing was compiled out (-DXROUTE_TRACING=OFF)\n";
  return 2;
#else
  if (args.empty()) throw UsageError("trace: missing <plan-file> argument");
  std::string chrome_out;
  std::uint64_t dump_trace = 0;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--dump") {
      if (++i >= args.size()) throw UsageError("trace: --dump needs an id");
      dump_trace = std::stoull(args[i]);
    } else {
      chrome_out = args[i];
    }
  }
  std::ifstream in(args[0]);
  if (!in) throw std::runtime_error("cannot open " + args[0]);
  FaultPlan plan = parse_fault_plan(in);

  Simulator sim(Simulator::Options{0.0});
  ScenarioRun run = run_scenario(sim, plan, /*faulted=*/true, /*traced=*/true);
  const Tracer& tracer = *sim.tracer();

  std::size_t kind_counts[10] = {};
  std::size_t retransmits = 0, dropped = 0;
  for (const Span& span : tracer.spans()) {
    ++kind_counts[static_cast<std::size_t>(span.kind)];
    if (span.retransmit) ++retransmits;
    if (span.dropped) ++dropped;
  }
  std::cout << tracer.trace_count() << " traces, " << tracer.spans().size()
            << " spans (quiesced at " << run.report.last_activity << " ms)\n";
  const SpanKind kinds[] = {SpanKind::kInject, SpanKind::kEnqueue,
                            SpanKind::kLink,   SpanKind::kBroker,
                            SpanKind::kDeliver};
  for (SpanKind kind : kinds) {
    std::cout << "  " << to_string(kind) << " "
              << kind_counts[static_cast<std::size_t>(kind)];
  }
  std::cout << "\n  retransmit attempts " << retransmits << ", dropped "
            << dropped << "\n";

  // The trace is only worth exporting if it is a faithful witness:
  // reconstruct every subscriber's delivery set from deliver spans and
  // hold it against the simulator's records.
  std::map<int, std::set<std::uint64_t>> from_trace;
  for (const Span& span : tracer.spans()) {
    if (span.kind == SpanKind::kDeliver && !span.duplicate) {
      from_trace[span.client].insert(span.doc_id);
    }
  }
  bool faithful = true;
  for (int client : run.subscribers) {
    if (from_trace[client] != sim.delivered_docs(client)) {
      faithful = false;
      std::cout << "  subscriber client " << client << ": trace says "
                << from_trace[client].size() << " docs, simulator "
                << sim.delivered_docs(client).size() << "\n";
    }
  }
  std::cout << "trace reconstruction: " << (faithful ? "EQUAL" : "MISMATCH")
            << " (vs simulator delivery records)\n";

  if (!chrome_out.empty()) {
    std::ofstream out(chrome_out);
    if (!out) throw std::runtime_error("cannot write " + chrome_out);
    write_chrome_trace(tracer, out);
    std::cout << "chrome trace written to " << chrome_out
              << " (load in about:tracing or ui.perfetto.dev)\n";
  }
  if (dump_trace != 0) write_trace_json(tracer, dump_trace, std::cout);
  return faithful ? 0 : 1;
#endif
}

int cmd_metrics(const std::vector<std::string>& args) {
  if (args.empty()) throw UsageError("metrics: missing <plan-file> argument");
  std::ifstream in(args[0]);
  if (!in) throw std::runtime_error("cannot open " + args[0]);
  FaultPlan plan = parse_fault_plan(in);

  Simulator sim(Simulator::Options{0.0});
  run_scenario(sim, plan, /*faulted=*/true, /*traced=*/false);
  sim.stats().registry().write_json(std::cout);
  return 0;
}

// -- Network commands -------------------------------------------------------

volatile std::sig_atomic_t g_stop = 0;

int cmd_scenario(const std::vector<std::string>& args) {
  if (args.empty() || args[0] != "run") {
    throw UsageError("scenario: usage is 'scenario run <file>... [--out F]'");
  }
  std::vector<std::string> files;
  std::string out_path = "BENCH_scenarios.json";
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--out") {
      if (++i >= args.size()) throw UsageError("scenario: --out needs a file");
      out_path = args[i];
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.empty()) throw UsageError("scenario run: needs a scenario file");
  std::vector<scenario::ScenarioReport> reports;
  bool all_ok = true;
  for (const std::string& file : files) {
    scenario::Scenario script = scenario::parse_scenario(read_file(file));
    std::cerr << "scenario " << script.name << " (" << file << ")...\n";
    scenario::ScenarioReport report = scenario::run_scenario(script);
    std::cerr << "  " << (report.ok ? "ok" : "FAILED") << ": "
              << report.docs_published << " docs (" << report.docs_assured
              << " assured, " << report.best_effort_losses
              << " best-effort losses), loss window "
              << report.loss_window_ms << " ms, " << report.duplicates
              << " duplicates\n";
    for (const std::string& failure : report.failures) {
      std::cerr << "    " << failure << "\n";
    }
    all_ok = all_ok && report.ok;
    reports.push_back(std::move(report));
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + out_path);
  out << scenario::report_json(reports);
  std::cerr << "wrote " << out_path << "\n";
  return all_ok ? 0 : 1;
}

void handle_stop_signal(int) { g_stop = 1; }

void install_stop_handlers() {
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
}

std::uint16_t parse_port(const std::string& text) {
  unsigned long value = 0;
  try {
    value = std::stoul(text);
  } catch (const std::exception&) {
    throw UsageError("bad port '" + text + "'");
  }
  if (value == 0 || value > 65535) throw UsageError("bad port '" + text + "'");
  return static_cast<std::uint16_t>(value);
}

/// The `serve` overlay description: every broker's address plus the links
/// and the shared broker configuration (`option` lines).
struct OverlayFile {
  struct BrokerSpec {
    std::string host;
    std::uint16_t port = 0;
  };
  std::map<int, BrokerSpec> brokers;
  std::vector<std::pair<int, int>> links;
  BrokerOptions config;
};

OverlayFile parse_overlay_file(std::istream& in) {
  OverlayFile overlay;
  // Served overlays have no advertising publisher unless asked: flooded
  // subscriptions by default (`option advertisements on` or the
  // --advertisements flag restore the paper's advertisement-based mode).
  overlay.config.use_advertisements = false;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word[0] == '#') continue;
    auto fail = [&](const std::string& why) -> std::runtime_error {
      return std::runtime_error("overlay file line " + std::to_string(line_no) +
                                ": " + why);
    };
    if (word == "broker") {
      int id = -1;
      std::string host, port;
      if (!(ls >> id >> host >> port)) {
        throw fail("expected 'broker <id> <host> <port>'");
      }
      overlay.brokers[id] = OverlayFile::BrokerSpec{host, parse_port(port)};
    } else if (word == "link") {
      int a = -1, b = -1;
      if (!(ls >> a >> b)) throw fail("expected 'link <a> <b>'");
      if (a == b) throw fail("a link needs two distinct brokers");
      overlay.links.emplace_back(a, b);
    } else if (word == "option") {
      std::string key, value;
      if (!(ls >> key >> value)) throw fail("expected 'option <key> <value>'");
      if (std::string err = apply_broker_option(overlay.config, key, value);
          !err.empty()) {
        throw fail(err);
      }
    } else {
      throw fail("unknown declaration '" + word + "'");
    }
  }
  for (const auto& [a, b] : overlay.links) {
    if (!overlay.brokers.count(a) || !overlay.brokers.count(b)) {
      throw std::runtime_error("overlay file: link " + std::to_string(a) +
                               " " + std::to_string(b) +
                               " references an undeclared broker");
    }
  }
  return overlay;
}

int cmd_serve(const std::vector<std::string>& args) {
  std::vector<std::string> positional;
  bool advertisements = false;
  bool join = false;
  bool graceful_leave = false;
  std::uint32_t incarnation = 0;
  bool edge = false;
  edge::EdgeServer::Options edge_opts;
  // (key, value) overrides, applied over the overlay file's `option`
  // lines in command-line order so the last spelling of a knob wins.
  std::vector<std::pair<std::string, std::string>> overrides;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--advertisements") {
      advertisements = true;
    } else if (args[i] == "--join") {
      join = true;
    } else if (args[i] == "--graceful-leave") {
      graceful_leave = true;
    } else if (args[i] == "--incarnation") {
      if (++i >= args.size()) {
        throw UsageError("serve: --incarnation needs a count");
      }
      try {
        incarnation = static_cast<std::uint32_t>(std::stoul(args[i]));
      } catch (const std::exception&) {
        throw UsageError("serve: bad incarnation '" + args[i] + "'");
      }
    } else if (args[i] == "--threads") {
      if (++i >= args.size()) throw UsageError("serve: --threads needs a count");
      overrides.emplace_back("threads", args[i]);
    } else if (args[i] == "--edge-port") {
      if (++i >= args.size()) throw UsageError("serve: --edge-port needs a port");
      edge = true;
      edge_opts.listen_port = parse_port(args[i]);
    } else if (args[i] == "--edge-reactors") {
      if (++i >= args.size()) {
        throw UsageError("serve: --edge-reactors needs a count");
      }
      try {
        edge_opts.reactors = std::stoi(args[i]);
      } catch (const std::exception&) {
        edge_opts.reactors = 0;
      }
      if (edge_opts.reactors < 1) {
        throw UsageError("serve: bad reactor count '" + args[i] + "'");
      }
    } else if (args[i] == "--lease-ttl") {
      if (++i >= args.size()) throw UsageError("serve: --lease-ttl needs ms");
      try {
        edge_opts.lease_ttl_ms = std::stod(args[i]);
      } catch (const std::exception&) {
        edge_opts.lease_ttl_ms = 0;
      }
      if (edge_opts.lease_ttl_ms <= 0) {
        throw UsageError("serve: bad lease ttl '" + args[i] + "'");
      }
    } else if (args[i] == "--option") {
      if (++i >= args.size()) {
        throw UsageError("serve: --option needs key=value");
      }
      std::size_t eq = args[i].find('=');
      if (eq == std::string::npos || eq == 0) {
        throw UsageError("serve: --option needs key=value, got '" + args[i] +
                         "'");
      }
      overrides.emplace_back(args[i].substr(0, eq), args[i].substr(eq + 1));
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.size() != 2) {
    throw UsageError("serve: needs <overlay-file> and <broker-id>");
  }
  std::ifstream in(positional[0]);
  if (!in) throw std::runtime_error("cannot open " + positional[0]);
  OverlayFile overlay = parse_overlay_file(in);
  int self = -1;
  try {
    self = std::stoi(positional[1]);
  } catch (const std::exception&) {
    throw UsageError("serve: bad broker id '" + positional[1] + "'");
  }
  auto spec = overlay.brokers.find(self);
  if (spec == overlay.brokers.end()) {
    throw std::runtime_error("broker " + std::to_string(self) +
                             " is not declared in the overlay file");
  }

  transport::TransportBroker::Options opts;
  opts.id = self;
  opts.listen_port = spec->second.port;
  opts.incarnation = incarnation;
  opts.config = overlay.config;
  if (advertisements) opts.config.use_advertisements = true;
  for (const auto& [key, value] : overrides) {
    if (std::string err = apply_broker_option(opts.config, key, value);
        !err.empty()) {
      throw UsageError("serve: " + err);
    }
  }
  // Surface an invalid combination as a usage error (exit 2) here rather
  // than as the broker constructor's invalid_argument.
  if (std::string err = opts.config.validate(); !err.empty()) {
    throw UsageError("serve: " + err);
  }
  transport::TransportBroker broker(std::move(opts));
  broker.start();
  std::cerr << "broker " << self << " listening on port " << broker.port()
            << "\n";
  // The edge session layer rides beside the broker in-process: leased
  // client sessions on their own port, the whole population one broker
  // interface.
  std::unique_ptr<edge::EdgeServer> edge_server;
  if (edge) {
    edge_server = std::make_unique<edge::EdgeServer>(&broker, edge_opts);
    std::cerr << "edge session layer on port " << edge_server->start() << " ("
              << edge_server->reactors() << " reactors, lease ttl "
              << edge_opts.lease_ttl_ms << " ms)\n";
  }

  // The lower endpoint of each link dials (one TCP connection per link);
  // dialing retries with backoff, so the overlay can start in any order.
  // With --join the broker instead enters a live overlay: same dials, but
  // every link (dialed or accepted) is asked for a SyncState so routing
  // state converges before traffic relies on it — the rejoin-after-crash
  // path when paired with a bumped --incarnation.
  std::vector<std::pair<std::string, std::uint16_t>> dials;
  std::size_t degree = 0;
  for (const auto& [a, b] : overlay.links) {
    if (self != a && self != b) continue;
    ++degree;
    if (self != std::min(a, b)) continue;
    const OverlayFile::BrokerSpec& peer = overlay.brokers.at(std::max(a, b));
    dials.emplace_back(peer.host, peer.port);
  }
  if (join) {
    broker.join(std::move(dials), degree);
  } else {
    for (const auto& [host, port] : dials) broker.connect_to(host, port);
  }

  install_stop_handlers();
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (edge_server) {
    std::cout << edge_server->metrics_json() << "\n";
    edge_server->stop();  // sessions down before the broker they feed from
  }
  std::cout << broker.metrics_json() << "\n";
  if (graceful_leave) {
    // Planned departure: flush in-flight frames and say goodbye so peers
    // hand our routes back instead of quarantining them for a rejoin.
    if (!broker.leave(5000.0)) {
      std::cerr << "serve: leave flush missed its deadline\n";
      return 1;
    }
    return 0;
  }
  broker.stop();
  return 0;
}

int cmd_connect(const std::vector<std::string>& args) {
  if (args.size() != 2) throw UsageError("connect: needs <host> and <port>");
  transport::TransportClient::Options opts;
  // One dial, no retry: this command answers "is a broker up right now?".
  opts.dial_backoff.max_attempts = 0;
  transport::TransportClient client(std::move(opts));
  client.start(args[0], parse_port(args[1]));
  if (!client.wait_connected(3000)) {
    std::cerr << "connect: no broker answered at " << args[0] << ":" << args[1]
              << "\n";
    return 1;
  }
  std::cout << "connected: broker at " << args[0] << ":" << args[1]
            << " speaks protocol v" << int{wire::kProtocolVersion} << "\n";
  return 0;
}

int cmd_sub(const std::vector<std::string>& args) {
  std::vector<std::string> positional;
  std::size_t count = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--count") {
      if (++i >= args.size()) throw UsageError("sub: --count needs a number");
      count = std::stoul(args[i]);
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.size() < 3) {
    throw UsageError("sub: needs <host>, <port> and at least one XPE");
  }
  transport::TransportClient client{transport::TransportClient::Options{}};
  client.set_message_handler([](const Message& msg) {
    if (msg.type() != MessageType::kPublish) return;
    const auto& pub = std::get<PublishMsg>(msg.payload);
    std::cout << "doc " << pub.doc_id << " path " << pub.path.to_string()
              << "\n"
              << std::flush;
  });
  client.start(positional[0], parse_port(positional[1]));
  if (!client.wait_connected()) {
    std::cerr << "sub: no broker answered at " << positional[0] << ":"
              << positional[1] << "\n";
    return 1;
  }
  for (std::size_t i = 2; i < positional.size(); ++i) {
    client.send(Message::subscribe(parse_xpe(positional[i])));
  }
  install_stop_handlers();
  while (!g_stop && (count == 0 || client.delivered_docs().size() < count)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return 0;
}

int cmd_pub(const std::vector<std::string>& args) {
  std::vector<std::string> positional;
  std::uint64_t doc_id = 1;
  bool tree = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--first-doc-id") {
      if (++i >= args.size()) {
        throw UsageError("pub: --first-doc-id needs a number");
      }
      doc_id = std::stoull(args[i]);
    } else if (args[i] == "--tree") {
      tree = true;
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.size() < 3) {
    throw UsageError("pub: needs <host>, <port> and at least one XML file");
  }
  transport::TransportClient client{transport::TransportClient::Options{}};
  client.start(positional[0], parse_port(positional[1]));
  if (!client.wait_connected()) {
    std::cerr << "pub: no broker answered at " << positional[0] << ":"
              << positional[1] << "\n";
    return 1;
  }
  for (std::size_t i = 2; i < positional.size(); ++i, ++doc_id) {
    std::string xml = read_file(positional[i]);
    // Streaming decomposition is the default: one pass over the bytes,
    // no tree. --tree runs the DOM reference pipeline; both produce
    // identical path lists (tests/stream_parser_test).
    std::vector<Path> paths =
        tree ? extract_paths(parse_xml(xml)) : stream_extract_paths(xml);
    std::uint32_t path_id = 0;
    for (const Path& path : paths) {
      PublishMsg msg;
      msg.path = path;
      msg.doc_id = doc_id;
      msg.path_id = path_id++;
      msg.doc_bytes = xml.size();
      msg.paths_in_doc = static_cast<std::uint32_t>(paths.size());
      client.send(Message{msg});
    }
    std::cerr << "doc " << doc_id << ": " << paths.size() << " paths, "
              << xml.size() << " bytes\n";
  }
  client.sync();
  // sync() only guarantees frames reached the connection's userspace
  // queue; wait for the kernel to take them before the socket closes, or
  // the tail of a large document is silently dropped.
  if (!client.drain(10000)) {
    std::cerr << "pub: connection dropped or timed out before all frames "
                 "were flushed\n";
    return 1;
  }
  return 0;
}

int cmd_swarm(const std::vector<std::string>& args) {
  std::vector<std::string> positional;
  edge::EdgeSwarm::Options opts;
  std::vector<std::string> xpe_texts;
  double duration_ms = 0.0;  // 0 = until SIGINT
  for (std::size_t i = 0; i < args.size(); ++i) {
    auto number = [&](const char* what) -> double {
      if (++i >= args.size()) {
        throw UsageError(std::string("swarm: ") + what + " needs a value");
      }
      try {
        return std::stod(args[i]);
      } catch (const std::exception&) {
        throw UsageError(std::string("swarm: bad ") + what + " '" + args[i] +
                         "'");
      }
    };
    if (args[i] == "--clients") {
      opts.clients = static_cast<std::size_t>(number("--clients"));
      if (opts.clients == 0) throw UsageError("swarm: --clients must be > 0");
    } else if (args[i] == "--loops") {
      opts.loops = static_cast<int>(number("--loops"));
      if (opts.loops < 1) throw UsageError("swarm: --loops must be >= 1");
    } else if (args[i] == "--duration") {
      duration_ms = number("--duration");
    } else if (args[i] == "--heartbeat") {
      opts.heartbeat_interval_ms = number("--heartbeat");
    } else if (args[i] == "--xpe") {
      if (++i >= args.size()) throw UsageError("swarm: --xpe needs an XPE");
      xpe_texts.push_back(args[i]);
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.size() != 2) {
    throw UsageError("swarm: needs <host> and <edge-port>");
  }
  opts.host = positional[0];
  opts.port = parse_port(positional[1]);
  if (xpe_texts.empty()) xpe_texts.push_back("//*");
  std::vector<Xpe> interests;
  for (const std::string& text : xpe_texts) interests.push_back(parse_xpe(text));

  edge::EdgeSwarm swarm(opts);
  swarm.set_interests([&interests](std::size_t) { return interests; });
  swarm.start();
  if (!swarm.wait_connected(opts.clients, 30000)) {
    std::cerr << "swarm: only " << swarm.connected() << "/" << opts.clients
              << " clients connected (" << swarm.connect_failures()
              << " failures)\n";
    return 1;
  }
  std::uint64_t wanted_grants =
      static_cast<std::uint64_t>(opts.clients) * interests.size();
  if (!swarm.wait_lease_grants(wanted_grants, 30000)) {
    std::cerr << "swarm: only " << swarm.lease_grants() << "/" << wanted_grants
              << " lease grants arrived\n";
    return 1;
  }
  std::cerr << "swarm: " << swarm.connected() << " clients leased on "
            << opts.host << ":" << opts.port << "\n";
  install_stop_handlers();
  double started = edge::steady_ms();
  while (!g_stop &&
         (duration_ms <= 0 || edge::steady_ms() - started < duration_ms)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cout << "{\"clients\": " << swarm.connected()
            << ", \"lease_grants\": " << swarm.lease_grants()
            << ", \"publications\": " << swarm.publications()
            << ", \"duplicates\": " << swarm.duplicates()
            << ", \"disconnects\": " << swarm.disconnects() << "}\n";
  swarm.stop();
  return swarm.duplicates() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  std::string command = args[0];
  args.erase(args.begin());
  try {
    if (command == "help" || command == "--help" || command == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (command == "parse") return cmd_parse(args);
    if (command == "covers") return cmd_covers(args);
    if (command == "derive") return cmd_derive(args);
    if (command == "match") return cmd_match(args);
    if (command == "paths") return cmd_paths(args);
    if (command == "universe") return cmd_universe(args);
    if (command == "faultsim") return cmd_faultsim(args);
    if (command == "trace") return cmd_trace(args);
    if (command == "metrics") return cmd_metrics(args);
    if (command == "scenario") return cmd_scenario(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "connect") return cmd_connect(args);
    if (command == "sub") return cmd_sub(args);
    if (command == "pub") return cmd_pub(args);
    if (command == "swarm") return cmd_swarm(args);
    std::cerr << "xroutectl: unknown command '" << command << "'\n" << kUsage;
    return 2;
  } catch (const UsageError& e) {
    std::cerr << "xroutectl: " << e.what() << "\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
