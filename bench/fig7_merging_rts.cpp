// Fig. 7 — Routing table size under covering vs perfect vs imperfect
// merging (the paper's Set B).
//
// The paper reports perfect merging compacting the covering routing table
// to ~87% and imperfect merging (D_imperfect = 0.1) to ~67%.
#include <iostream>
#include <map>
#include <set>

#include "core/experiment.hpp"
#include "dtd/graph.hpp"
#include "dtd/universe.hpp"
#include "index/merging.hpp"
#include "index/subscription_tree.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/set_builder.hpp"
#include "workload/xpath_gen.hpp"

using namespace xroute;

namespace {

std::size_t forwarded_table_size(const SubscriptionTree& tree) {
  std::size_t count = 0;
  for (const auto& node : tree.root()->children) {
    if (node->super_sources.empty()) ++count;
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("Fig. 7: RTS with covering / perfect merging / imperfect merging");
  flags.define("count", "1200", "queries in the data set");
  flags.define("points", "6", "number of measurement points");
  flags.define("rate", "0.5", "target covering rate (Set B)");
  flags.define("imperfect", "0.1", "imperfect-merging tolerance");
  flags.define("dtd", "news", "corpus DTD");
  flags.define("seed", "2", "workload seed");
  flags.define("full", "false", "larger sweep (slower)");
  if (!flags.parse(argc, argv)) return 0;

  const std::size_t count =
      flags.get_bool("full") ? 1400 : static_cast<std::size_t>(flags.get_int("count"));
  const std::size_t points = flags.get_int("points");
  Dtd dtd = corpus_dtd(flags.get_string("dtd"));

  // The workload is built from sibling families of concrete leaf
  // interests — complete families are perfect-merge material, ~90%
  // families imperfect-merge material (paper §4.3) — plus random
  // concrete singles. (Wildcard coverers are deliberately absent: they
  // would nest family members under different parents and mask the
  // merging effect this figure isolates; covering itself is Fig. 6.)
  Rng rng(flags.get_int64("seed"));
  std::vector<Xpe> xpes;
  {
    ElementGraph graph(dtd);
    PathUniverse::Options uopts;
    uopts.max_depth = 10;
    PathUniverse universe(dtd, uopts);
    std::map<std::string, std::vector<Path>> families;
    for (const Path& path : universe.paths()) {
      if (!graph.is_leaf(path.elements.back())) continue;
      Path prefix = path;
      prefix.elements.pop_back();
      families[prefix.to_string()].push_back(path);
    }
    std::vector<const std::vector<Path>*> eligible;
    for (const auto& [key, members] : families) {
      (void)key;
      if (members.size() >= 4) eligible.push_back(&members);
    }
    std::vector<Path> all_leaf_paths;
    for (const auto& [key, members] : families) {
      (void)key;
      for (const Path& path : members) all_leaf_paths.push_back(path);
    }
    auto as_xpe = [](const Path& path) {
      std::vector<Step> steps;
      for (const std::string& e : path.elements) {
        steps.push_back(Step{Axis::kChild, e});
      }
      return Xpe::absolute(std::move(steps));
    };

    std::set<std::string> seen;
    std::shuffle(eligible.begin(), eligible.end(), rng.engine());
    for (const auto* members_ptr : eligible) {
      if (xpes.size() >= count) break;
      const auto& members = *members_ptr;
      // Complete family (perfect merge) or ~90% family (imperfect merge).
      bool complete = rng.chance(0.5);
      for (const Path& path : members) {
        if (!complete &&
            rng.chance(1.0 / static_cast<double>(members.size()))) {
          continue;  // leave a hole
        }
        Xpe xpe = as_xpe(path);
        if (seen.insert(xpe.to_string()).second) xpes.push_back(std::move(xpe));
        if (xpes.size() >= count) break;
      }
    }
    // Top up with random concrete singles.
    std::size_t guard = 0;
    while (xpes.size() < count && guard++ < count * 20) {
      Xpe xpe = as_xpe(all_leaf_paths[rng.index(all_leaf_paths.size())]);
      if (seen.insert(xpe.to_string()).second) xpes.push_back(std::move(xpe));
    }
    std::shuffle(xpes.begin(), xpes.end(), rng.engine());
  }
  std::cout << "Fig. 7 reproduction: Set B blend, " << xpes.size()
            << " XPEs, covering rate " << TextTable::fmt(covering_rate(xpes))
            << "\n\n";

  PathUniverse universe(dtd);
  MergeOptions perfect;  // D_imperfect = 0
  MergeOptions imperfect;
  imperfect.max_imperfect_degree = flags.get_double("imperfect");
  // Rule 3 (prefix-//-suffix) is kept off here: greedily applied it eats
  // family members pairwise and blocks the larger Rule-1 merges (greedy
  // merging is order-sensitive; the paper applies Rule 3 only "if most
  // parts ... are equal").
  MergeEngine perfect_engine(&universe, perfect);
  MergeEngine imperfect_engine(&universe, imperfect);

  SubscriptionTree cov_tree, pm_tree, ipm_tree;
  TextTable table({"#subscriptions", "covering", "perfect merging",
                   "imperfect merging"});
  const std::size_t n = xpes.size();
  const std::size_t step = std::max<std::size_t>(1, n / points);
  std::size_t inserted = 0;
  for (std::size_t point = step; point <= n; point += step) {
    while (inserted < point) {
      const Xpe& x = xpes[inserted++];
      cov_tree.insert(x, IfaceId{0});
      pm_tree.insert(x, IfaceId{0});
      ipm_tree.insert(x, IfaceId{0});
    }
    // "We periodically apply the merging rules on the subscription tree."
    perfect_engine.run(pm_tree);
    imperfect_engine.run(ipm_tree);
    table.add_row({TextTable::fmt(point),
                   TextTable::fmt(forwarded_table_size(cov_tree)),
                   TextTable::fmt(forwarded_table_size(pm_tree)),
                   TextTable::fmt(forwarded_table_size(ipm_tree))});
  }
  table.print(std::cout);

  auto pct = [&](const SubscriptionTree& t) {
    return 100.0 * static_cast<double>(forwarded_table_size(t)) /
           static_cast<double>(forwarded_table_size(cov_tree));
  };
  std::cout << "\nrelative to covering alone: perfect merging "
            << TextTable::fmt(pct(pm_tree), 1) << "%, imperfect merging "
            << TextTable::fmt(pct(ipm_tree), 1)
            << "% (paper: ~87% and ~67%).\n";
  return 0;
}
