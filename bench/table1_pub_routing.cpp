// Table 1 — Publication routing performance.
//
// The paper routes 23,098 publications (paths extracted from 500 XML
// documents) against 100,000 XPEs and reports the average routing time
// per publication for: no covering, covering, covering + perfect merging,
// covering + imperfect merging — on Set A (90% covering) and Set B (50%).
//
// Default scales: 2000 XPEs per set (the exact-rate capacity of the
// corpus DTD, see DESIGN.md), publications from 100 documents.
#include <iostream>
#include <vector>

#include "core/experiment.hpp"
#include "dtd/universe.hpp"
#include "index/merging.hpp"
#include "router/routing_tables.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/set_builder.hpp"
#include "workload/xml_gen.hpp"

using namespace xroute;

namespace {

double route_all(const Prt& prt, const std::vector<Path>& pubs) {
  Stopwatch watch;
  std::size_t matched = 0;
  for (const Path& p : pubs) {
    matched += prt.match_hops(p).size();
  }
  (void)matched;
  return watch.elapsed_ms() / static_cast<double>(pubs.size());
}

struct SetResult {
  double no_covering = 0, covering = 0, perfect = 0, imperfect = 0;
};

SetResult run_set(const Dtd& dtd, const std::vector<Xpe>& xpes,
                  const std::vector<Path>& pubs, double imperfect_degree) {
  SetResult result;
  Rng rng(99);

  // No covering: flat table scan (paper's baseline).
  {
    Prt flat(/*covering=*/false);
    for (const Xpe& x : xpes) flat.insert(x, IfaceId{rng.uniform_int(0, 3)});
    result.no_covering = route_all(flat, pubs);
  }
  // Covering: the subscription tree with subtree pruning.
  Prt covering(/*covering=*/true);
  {
    Rng hop_rng(99);
    for (const Xpe& x : xpes) covering.insert(x, IfaceId{hop_rng.uniform_int(0, 3)});
    result.covering = route_all(covering, pubs);
  }
  // Merging: run merge passes on copies of the covering tree.
  PathUniverse universe(dtd);
  {
    Prt pm(/*covering=*/true);
    Rng hop_rng(99);
    for (const Xpe& x : xpes) pm.insert(x, IfaceId{hop_rng.uniform_int(0, 3)});
    MergeEngine engine(&universe, MergeOptions{});
    engine.run(*pm.tree());
    result.perfect = route_all(pm, pubs);
  }
  {
    Prt ipm(/*covering=*/true);
    Rng hop_rng(99);
    for (const Xpe& x : xpes) ipm.insert(x, IfaceId{hop_rng.uniform_int(0, 3)});
    MergeOptions mopts;
    mopts.max_imperfect_degree = imperfect_degree;
    mopts.rule_general = true;
    MergeEngine engine(&universe, mopts);
    engine.run(*ipm.tree());
    result.imperfect = route_all(ipm, pubs);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("Table 1: publication routing time per message");
  flags.define("count", "2000", "XPEs per data set");
  flags.define("docs", "100", "XML documents to extract publications from");
  flags.define("imperfect", "0.1", "imperfect-merging tolerance");
  flags.define("seed", "4", "workload seed");
  flags.define("full", "false", "larger sweep (slower)");
  if (!flags.parse(argc, argv)) return 0;

  const bool full = flags.get_bool("full");
  const std::size_t count = full ? 11000 : flags.get_int("count");
  const std::size_t docs = full ? 500 : flags.get_int("docs");
  Dtd dtd = news_dtd();

  CoverSetOptions a_opts;
  a_opts.count = count;
  a_opts.target_rate = 0.9;
  a_opts.seed = flags.get_int64("seed");
  CoverSet set_a = build_covering_set(dtd, a_opts);
  CoverSetOptions b_opts = a_opts;
  b_opts.target_rate = 0.5;
  b_opts.seed = flags.get_int64("seed") + 1;
  CoverSet set_b = build_covering_set(dtd, b_opts);

  // Publications: root-to-leaf paths of generated documents (paper §3.1).
  Rng rng(flags.get_int64("seed") + 2);
  std::vector<Path> pubs;
  for (std::size_t d = 0; d < docs; ++d) {
    XmlDocument doc = generate_document(dtd, rng, {});
    for (Path& p : extract_paths(doc)) pubs.push_back(std::move(p));
  }

  std::cout << "Table 1 reproduction: publication routing time\n";
  std::cout << "Set A: " << set_a.xpes.size() << " XPEs (covering rate "
            << TextTable::fmt(set_a.constructed_rate) << "), Set B: "
            << set_b.xpes.size() << " XPEs (rate "
            << TextTable::fmt(set_b.constructed_rate) << "), "
            << pubs.size() << " publications from " << docs
            << " documents\n\n";

  SetResult a = run_set(dtd, set_a.xpes, pubs, flags.get_double("imperfect"));
  SetResult b = run_set(dtd, set_b.xpes, pubs, flags.get_double("imperfect"));

  TextTable table({"Method", "Set A (ms)", "Set B (ms)"});
  table.add_row({"No Covering", TextTable::fmt(a.no_covering, 4),
                 TextTable::fmt(b.no_covering, 4)});
  table.add_row({"Covering", TextTable::fmt(a.covering, 4),
                 TextTable::fmt(b.covering, 4)});
  table.add_row({"Perfect Merging", TextTable::fmt(a.perfect, 4),
                 TextTable::fmt(b.perfect, 4)});
  table.add_row({"Imperfect Merging", TextTable::fmt(a.imperfect, 4),
                 TextTable::fmt(b.imperfect, 4)});
  table.print(std::cout);

  std::cout << "\ncovering reduces routing time by "
            << TextTable::fmt(100.0 * (a.no_covering - a.covering) / a.no_covering, 1)
            << "% on Set A and "
            << TextTable::fmt(100.0 * (b.no_covering - b.covering) / b.no_covering, 1)
            << "% on Set B (paper: 84.6% and 47.5%).\n";
  return 0;
}
