// Shared runner for the network-level experiments (Tables 2/3, Fig. 9).
#pragma once

#include <cstdint>
#include <vector>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "workload/xml_gen.hpp"
#include "workload/xpath_gen.hpp"

namespace xroute::benchsupport {

struct NetworkWorkload {
  /// Per-subscriber XPE lists (one subscriber per leaf broker).
  std::vector<std::vector<Xpe>> subscriptions;
  /// (paths, doc bytes) per published document.
  std::vector<std::pair<std::vector<Path>, std::size_t>> documents;
  std::size_t publications = 0;
};

inline NetworkWorkload make_network_workload(const Dtd& dtd,
                                             std::size_t subscribers,
                                             std::size_t subs_each,
                                             std::size_t docs,
                                             std::uint64_t seed) {
  NetworkWorkload w;
  XpathGenOptions xopts;
  xopts.count = subscribers * subs_each;
  xopts.seed = seed;
  // Mostly-concrete maximal queries: realistic subscriber interests with
  // sibling structure the merging rules can aggregate (paper §4.3).
  xopts.leaf_only = true;
  xopts.wildcard_prob = 0.12;
  xopts.descendant_prob = 0.08;
  auto xpes = generate_xpaths(dtd, xopts);
  w.subscriptions.resize(subscribers);
  for (std::size_t i = 0; i < xpes.size(); ++i) {
    w.subscriptions[i % subscribers].push_back(xpes[i]);
  }
  Rng rng(seed + 1);
  for (std::size_t d = 0; d < docs; ++d) {
    XmlDocument doc = generate_document(dtd, rng, {});
    auto paths = extract_paths(doc);
    w.publications += paths.size();
    w.documents.emplace_back(std::move(paths), doc.byte_size());
  }
  return w;
}

struct NetworkRun {
  std::size_t traffic = 0;          ///< messages received by all brokers
  std::size_t adv_msgs = 0;
  std::size_t sub_msgs = 0;         ///< subscribe + unsubscribe
  std::size_t pub_msgs = 0;
  double delay_ms = 0.0;            ///< mean notification delay
  std::size_t notifications = 0;
  std::size_t false_positives = 0;  ///< merger matches with no original
  std::size_t total_prt = 0;
};

/// Runs one strategy on a complete binary tree with `levels` levels, one
/// subscriber per leaf broker, one publisher attached at random.
inline NetworkRun run_strategy(const Dtd& dtd, const NetworkWorkload& w,
                               const RoutingStrategy& strategy,
                               std::size_t levels, std::uint64_t seed,
                               double processing_scale = 1.0) {
  Topology topology = complete_binary_tree(levels);
  Network::Options options;
  options.topology = topology;
  options.strategy = strategy;
  options.dtd = dtd;
  options.seed = seed;
  options.processing_scale = processing_scale;
  options.merge_interval = 50;
  Network net(std::move(options));

  // "Publishers randomly connect to the broker overlay."
  Rng rng(seed + 17);
  int publisher =
      net.add_publisher(rng.uniform_int(0, static_cast<int>(topology.num_brokers) - 1));
  net.run();

  auto leaves = topology.leaf_brokers();
  std::vector<int> subscribers;
  for (std::size_t i = 0; i < w.subscriptions.size(); ++i) {
    int sub = net.add_subscriber(leaves[i % leaves.size()]);
    subscribers.push_back(sub);
    for (const Xpe& x : w.subscriptions[i]) net.subscribe(sub, x);
  }
  net.run();

  for (const auto& [paths, bytes] : w.documents) {
    net.publish_paths(publisher, paths, bytes);
  }
  net.run();

  NetworkRun result;
  result.traffic = net.stats().total_broker_messages();
  result.adv_msgs = net.stats().broker_messages(MessageType::kAdvertise);
  result.sub_msgs = net.stats().broker_messages(MessageType::kSubscribe) +
                    net.stats().broker_messages(MessageType::kUnsubscribe);
  result.pub_msgs = net.stats().broker_messages(MessageType::kPublish);
  result.delay_ms = net.stats().delay_summary().mean_ms;
  result.notifications = net.stats().notifications();
  result.false_positives = net.stats().merger_false_matches();
  result.total_prt = net.total_prt_size();
  return result;
}

}  // namespace xroute::benchsupport
