// Parallel matching engine thread sweep (PR 5 acceptance bench).
//
// One broker, 10k subscriptions from the news-DTD covering set, and a
// stream of publications sampled from the same DTD's path universe,
// matched through Broker::handle_batch at 1/2/4/8 match workers. Before
// any timing, every thread count's forward output is verified identical
// to the sequential broker's on a probe set — the determinism contract —
// and the run aborts on a mismatch.
//
// Two speedup figures land in BENCH_parallel.json, and the honest one is
// chosen by the machine:
//
//  * measured — wall-clock pubs/sec ratio. Meaningful only when the
//    machine has enough cores to actually run the pool (cores > workers);
//    on a core-starved box the workers time-slice one core and wall
//    clock measures the scheduler's context-switching, not the engine.
//  * projected — per-thread CPU time (CLOCK_THREAD_CPUTIME_ID, immune to
//    preemption): control-thread CPU per publication plus an even split
//    of the workers' total match CPU. This is the epoch critical path an
//    unloaded machine would see; it excludes thread wake latency (which
//    spin-then-park hides under batch load) and assumes the per-
//    publication tasks balance, which batch sizes >> workers give.
//
// "speedup_basis" in the JSON says which figure "speedup_at_4_workers"
// reports; "cores" records the machine so a reader can judge.
#include <time.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include <algorithm>

#include "dtd/universe.hpp"
#include "metrics_snapshot.hpp"
#include "obs/metrics.hpp"
#include "router/broker.hpp"
#include "router/match_scheduler.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/symbols.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/set_builder.hpp"
#include "workload/xml_gen.hpp"
#include "xml/parser.hpp"
#include "xml/stream_parser.hpp"

using namespace xroute;

namespace {

using Clock = std::chrono::steady_clock;

/// Forwards go nowhere: the bench times matching + forward-order merge,
/// not serialisation.
struct DiscardSink : ForwardSink {
  void on_forward(IfaceId, const Message&) override {}
};

std::uint64_t thread_cpu_ns() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

constexpr int kPublisherIface = 0;

Broker make_broker(std::size_t threads, const CoverSet& set, int hops) {
  Broker::Config config;
  config.use_advertisements = false;
  config.match_threads = threads;
  Broker broker(0, config);
  for (int h = 0; h <= hops; ++h) broker.add_neighbor(IfaceId{h});
  // restore_subscription: table state without control-message churn (the
  // bench measures the data plane, not subscription flooding).
  for (std::size_t i = 0; i < set.xpes.size(); ++i) {
    broker.restore_subscription(
        set.xpes[i], IfaceSet{IfaceId{1 + static_cast<int>(i) % hops}});
  }
  return broker;
}

struct SweepPoint {
  std::size_t threads = 0;
  double pubs_per_sec = 0.0;
  double ctl_cpu_ns_per_pub = 0.0;
  double worker_busy_ns_per_pub = 0.0;
  double critical_path_ns_per_pub = 0.0;
  double projected_speedup = 1.0;
  std::uint64_t epochs = 0;
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;
  std::vector<MatchScheduler::WorkerStats> workers;
};

/// Per-publication CPU cost of each pipeline stage, measured in isolation
/// over the same document stream (one thread; a "pub" is one path, as on
/// the wire). parse covers wire bytes -> paths; parse_tree is the DOM
/// reference pipeline's figure for the same documents — the streaming
/// tentpole's before/after pair.
struct StageBreakdown {
  std::size_t docs = 0;
  std::size_t paths = 0;
  double parse_ns = 0.0;
  double parse_tree_ns = 0.0;
  double intern_ns = 0.0;
  double match_ns = 0.0;
  double merge_ns = 0.0;
};

/// Repeats `body` (one full pass over the corpus) until it has consumed
/// `min_ns` of thread CPU; returns CPU ns per pass.
template <typename F>
double timed_passes(double min_ns, F&& body) {
  std::uint64_t start = thread_cpu_ns();
  std::size_t passes = 0;
  std::uint64_t spent = 0;
  do {
    body();
    ++passes;
    spent = thread_cpu_ns() - start;
  } while (static_cast<double>(spent) < min_ns);
  return static_cast<double>(spent) / static_cast<double>(passes);
}

StageBreakdown measure_stages(const Dtd& dtd, const CoverSet& set, int hops,
                              std::uint64_t seed, double min_seconds) {
  // A fresh PRT mirroring the sweep broker's table, matched directly so
  // each stage can be timed without the scheduler around it.
  Prt prt(/*covering=*/true);
  for (std::size_t i = 0; i < set.xpes.size(); ++i) {
    prt.insert(set.xpes[i], IfaceId{1 + static_cast<int>(i) % hops});
  }
  prt.prepare_match();

  Rng rng(static_cast<std::uint64_t>(seed) + 7);
  StageBreakdown stages;
  stages.docs = 64;
  std::vector<std::string> texts;
  for (std::size_t i = 0; i < stages.docs; ++i) {
    texts.push_back(generate_document(dtd, rng).serialize());
  }

  const double min_ns = min_seconds * 1e9 / 4.0;
  StreamPathExtractor extractor;

  // parse: streaming — bytes to paths (interning happens inline here, so
  // this stage subsumes symbol resolution; intern below prices the
  // per-match re-intern the tree pipeline pays instead).
  double parse_pass = timed_passes(min_ns, [&] {
    stages.paths = 0;
    for (const std::string& text : texts) {
      extractor.extract(text);
      stages.paths += extractor.paths().size();
    }
  });
  stages.parse_ns = parse_pass / static_cast<double>(stages.paths);

  // parse_tree: the DOM reference pipeline over the same bytes.
  double tree_pass = timed_passes(min_ns, [&] {
    for (const std::string& text : texts) {
      std::vector<Path> paths = extract_paths(parse_xml(text));
      (void)paths;
    }
  });
  stages.parse_tree_ns = tree_pass / static_cast<double>(stages.paths);

  // Materialised corpus for the downstream stages.
  std::vector<Path> corpus;
  for (const std::string& text : texts) {
    std::vector<Path> paths = stream_extract_paths(text);
    corpus.insert(corpus.end(), paths.begin(), paths.end());
  }

  // intern: path -> symbol ids (the scheduler's per-pub staging cost).
  std::vector<std::uint32_t> storage;
  double intern_pass = timed_passes(min_ns, [&] {
    for (const Path& p : corpus) {
      PathView view = intern_path(p, storage);
      (void)view;
    }
  });
  stages.intern_ns = intern_pass / static_cast<double>(corpus.size());

  // match: full-table shard match per interned path.
  std::vector<InternedPath> interned(corpus.begin(), corpus.end());
  std::vector<std::vector<std::uint32_t>> distinct(interned.size());
  for (std::size_t i = 0; i < interned.size(); ++i) {
    for (std::uint32_t sym : interned[i].symbols) {
      if (sym == SymbolTable::kNoSymbol) continue;
      auto& d = distinct[i];
      if (std::find(d.begin(), d.end(), sym) == d.end()) d.push_back(sym);
    }
  }
  Prt::ShardMatch cell;
  double match_pass = timed_passes(min_ns, [&] {
    for (std::size_t i = 0; i < interned.size(); ++i) {
      cell.clear();
      prt.match_shard(interned[i].view(), distinct[i], 0, 1, &cell);
    }
  });
  stages.match_ns = match_pass / static_cast<double>(interned.size());

  // merge: canonicalising the per-pub hop list (sort + unique).
  std::vector<std::vector<IfaceId>> raw_hops(interned.size());
  for (std::size_t i = 0; i < interned.size(); ++i) {
    cell.clear();
    prt.match_shard(interned[i].view(), distinct[i], 0, 1, &cell);
    raw_hops[i] = cell.hops;
  }
  std::vector<IfaceId> scratch;
  double merge_pass = timed_passes(min_ns, [&] {
    for (const auto& hops_list : raw_hops) {
      scratch.assign(hops_list.begin(), hops_list.end());
      std::sort(scratch.begin(), scratch.end());
      scratch.erase(std::unique(scratch.begin(), scratch.end()),
                    scratch.end());
    }
  });
  stages.merge_ns = merge_pass / static_cast<double>(interned.size());
  return stages;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("Parallel matching engine thread sweep (1/2/4/8 workers)");
  flags.define("subs", "10000", "subscription count (PRT size)");
  flags.define("pubs", "512", "publication paths per timed batch");
  flags.define("batch", "256", "publications per handle_batch call");
  flags.define("hops", "64", "distinct last-hop interfaces");
  flags.define("seed", "1", "workload seed");
  flags.define("rate", "0.9", "target covering rate of the subscription set");
  flags.define("min-seconds", "1.0", "minimum timed duration per point");
  flags.define("out", "BENCH_parallel.json", "output file");
  if (!flags.parse(argc, argv)) return 0;

  const int hops = static_cast<int>(flags.get_int("hops"));
  const std::size_t batch = flags.get_int("batch");
  const double min_seconds = flags.get_double("min-seconds");
  const unsigned cores = std::thread::hardware_concurrency();

  Dtd dtd = corpus_dtd("news");
  CoverSetOptions set_opts;
  set_opts.count = flags.get_int("subs");
  set_opts.target_rate = flags.get_double("rate");
  set_opts.seed = flags.get_int64("seed");
  CoverSet set = build_covering_set(dtd, set_opts);
  std::cout << set.xpes.size() << " subscriptions (covering rate "
            << set.constructed_rate << "), " << cores << " core(s)\n";

  Rng rng(flags.get_int64("seed"));
  PathUniverse universe(dtd);
  const std::size_t pubs = flags.get_int("pubs");
  std::vector<Path> paths;
  for (std::size_t i = 0; i < pubs; ++i) {
    paths.push_back(rng.pick(universe.paths()));
  }
  if (set.xpes.empty() || paths.empty()) {
    std::cerr << "empty workload\n";
    return 1;
  }

  const std::size_t kThreadCounts[] = {1, 2, 4, 8};
  bool verified = true;

  // ---- Determinism check: identical forwards at every thread count ----
  std::vector<std::vector<Broker::Forward>> reference;
  for (std::size_t threads : kThreadCounts) {
    Broker broker = make_broker(threads, set, hops);
    std::vector<std::vector<Broker::Forward>> forwards;
    std::uint64_t doc_id = 1;
    for (const Path& path : paths) {
      PublishMsg msg;
      msg.path = path;
      msg.doc_id = doc_id++;
      forwards.push_back(
          broker.handle(IfaceId{kPublisherIface}, Message{msg}).forwards);
    }
    if (threads == 1) {
      reference = std::move(forwards);
      continue;
    }
    for (std::size_t i = 0; i < paths.size(); ++i) {
      bool same = forwards[i].size() == reference[i].size();
      for (std::size_t f = 0; same && f < forwards[i].size(); ++f) {
        same = forwards[i][f].interface == reference[i][f].interface;
      }
      if (!same) {
        std::cerr << "MISMATCH: " << threads << " threads, publication " << i
                  << " (" << paths[i].to_string() << ")\n";
        verified = false;
      }
    }
  }

  // ---- Thread sweep ---------------------------------------------------
  std::vector<SweepPoint> sweep;
  MetricsRegistry registry;
  for (std::size_t threads : kThreadCounts) {
    Broker broker = make_broker(threads, set, hops);
    DiscardSink sink;
    std::uint64_t doc_id = 1000000;  // disjoint from the verification ids

    // Pre-built message storage, re-stamped with fresh doc ids each pass
    // (the broker deduplicates (doc, path) repeats).
    std::vector<Message> messages;
    for (const Path& path : paths) {
      PublishMsg msg;
      msg.path = path;
      messages.emplace_back(msg);
    }

    std::uint64_t busy_before = 0, crit_before = 0;
    if (const MatchScheduler* scheduler = broker.scheduler()) {
      for (const auto& w : scheduler->worker_stats()) busy_before += w.busy_ns;
      crit_before = scheduler->critical_path_ns();
    }
    std::size_t reps = 0;
    double elapsed = 0.0;
    std::vector<Broker::Inbound> inbound;
    inbound.reserve(batch);
    const std::uint64_t cpu_start = thread_cpu_ns();
    auto start = Clock::now();
    do {
      for (Message& m : messages) {
        std::get<PublishMsg>(m.payload).doc_id = doc_id++;
      }
      for (std::size_t begin = 0; begin < messages.size(); begin += batch) {
        inbound.clear();
        std::size_t end = std::min(begin + batch, messages.size());
        for (std::size_t i = begin; i < end; ++i) {
          inbound.push_back(
              Broker::Inbound{IfaceId{kPublisherIface}, &messages[i]});
        }
        broker.handle_batch(inbound, sink);
      }
      ++reps;
      elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    } while (elapsed < min_seconds);
    const double ctl_cpu_ns = static_cast<double>(thread_cpu_ns() - cpu_start);
    const double total_pubs = static_cast<double>(reps * paths.size());

    SweepPoint point;
    point.threads = threads;
    point.pubs_per_sec = total_pubs / elapsed;
    point.ctl_cpu_ns_per_pub = ctl_cpu_ns / total_pubs;
    if (const MatchScheduler* scheduler = broker.scheduler()) {
      point.epochs = scheduler->epochs();
      point.tasks = scheduler->total_tasks();
      point.steals = scheduler->total_steals();
      point.workers = scheduler->worker_stats();
      std::uint64_t busy_after = 0;
      for (const auto& w : point.workers) busy_after += w.busy_ns;
      point.worker_busy_ns_per_pub =
          static_cast<double>(busy_after - busy_before) / total_pubs;
      point.critical_path_ns_per_pub =
          static_cast<double>(scheduler->critical_path_ns() - crit_before) /
          total_pubs;
    }
    std::cout << threads << " worker(s): " << point.pubs_per_sec
              << " pubs/s (wall), " << point.ctl_cpu_ns_per_pub
              << " ns/pub control CPU, " << point.worker_busy_ns_per_pub
              << " ns/pub worker CPU\n";
    MetricLabels labels{{"threads", std::to_string(threads)}};
    registry.gauge("bench.pubs_per_sec", labels).set(point.pubs_per_sec);
    registry.gauge("bench.epochs", labels)
        .set(static_cast<double>(point.epochs));
    for (std::size_t w = 0; w < point.workers.size(); ++w) {
      MetricLabels worker_labels{{"threads", std::to_string(threads)},
                                 {"worker", std::to_string(w)}};
      registry.gauge("match.worker_tasks", worker_labels)
          .set(static_cast<double>(point.workers[w].tasks));
      registry.gauge("match.worker_busy_ms", worker_labels)
          .set(static_cast<double>(point.workers[w].busy_ns) / 1e6);
    }
    sweep.push_back(std::move(point));
  }

  // ---- Speedups: measured wall clock + CPU-time projection ------------
  // Sequential cost per publication, as CPU time so the comparison with
  // the projection is like for like (on an idle machine the two agree).
  const double seq_ns_per_pub = sweep.front().ctl_cpu_ns_per_pub;
  for (SweepPoint& point : sweep) {
    if (point.threads == 1) continue;
    const double projected_ns =
        point.ctl_cpu_ns_per_pub +
        point.worker_busy_ns_per_pub / static_cast<double>(point.threads);
    point.projected_speedup = seq_ns_per_pub / projected_ns;
  }
  const double base = sweep.front().pubs_per_sec;
  double measured_at_4 = 0.0, projected_at_4 = 0.0;
  for (const SweepPoint& point : sweep) {
    if (point.threads == 4) {
      measured_at_4 = point.pubs_per_sec / base;
      projected_at_4 = point.projected_speedup;
    }
  }
  // Wall clock needs the pool and the control thread to genuinely run in
  // parallel; otherwise the machine is cores-limited: the headline follows
  // speedup_basis to the CPU-time projection and the JSON says so.
  const bool cores_limited = cores <= 4;
  const char* speedup_basis =
      cores_limited ? "critical_path_projection" : "wall_clock";
  const double speedup_at_4 = cores_limited ? projected_at_4 : measured_at_4;
  std::cout << "speedup at 4 workers: " << speedup_at_4 << "x ("
            << (cores_limited ? "critical-path projection; machine has too "
                                "few cores for a wall-clock measurement"
                              : "wall clock")
            << ")\n";

  // ---- Pipeline stage breakdown ---------------------------------------
  StageBreakdown stages = measure_stages(dtd, set, hops,
                                         flags.get_int64("seed"), min_seconds);
  std::cout << "stage ns/pub: parse " << stages.parse_ns << " (tree "
            << stages.parse_tree_ns << "), intern " << stages.intern_ns
            << ", match " << stages.match_ns << ", merge " << stages.merge_ns
            << "\n";
  registry.gauge("bench.stage_ns_per_pub", {{"stage", "parse"}})
      .set(stages.parse_ns);
  registry.gauge("bench.stage_ns_per_pub", {{"stage", "parse_tree"}})
      .set(stages.parse_tree_ns);
  registry.gauge("bench.stage_ns_per_pub", {{"stage", "intern"}})
      .set(stages.intern_ns);
  registry.gauge("bench.stage_ns_per_pub", {{"stage", "match"}})
      .set(stages.match_ns);
  registry.gauge("bench.stage_ns_per_pub", {{"stage", "merge"}})
      .set(stages.merge_ns);

  std::ofstream out(flags.get_string("out"));
  out << "{\n"
      << "  \"bench\": \"parallel_match\",\n"
      << "  \"config\": {\n"
      << "    \"subscriptions\": " << set.xpes.size() << ",\n"
      << "    \"publication_paths\": " << paths.size() << ",\n"
      << "    \"batch\": " << batch << ",\n"
      << "    \"hops\": " << hops << ",\n"
      << "    \"seed\": " << flags.get_int64("seed") << ",\n"
      << "    \"cores\": " << cores << "\n"
      << "  },\n"
      << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& point = sweep[i];
    out << "    {\"threads\": " << point.threads << ", \"pubs_per_sec\": "
        << point.pubs_per_sec << ", \"speedup_measured\": "
        << point.pubs_per_sec / base << ", \"speedup_projected\": "
        << point.projected_speedup << ", \"ctl_cpu_ns_per_pub\": "
        << point.ctl_cpu_ns_per_pub << ", \"worker_busy_ns_per_pub\": "
        << point.worker_busy_ns_per_pub << ", \"critical_path_ns_per_pub\": "
        << point.critical_path_ns_per_pub << ", \"epochs\": " << point.epochs
        << ", \"tasks\": " << point.tasks << ", \"steals\": " << point.steals
        << "}" << (i + 1 < sweep.size() ? ",\n" : "\n");
  }
  out << "  ],\n"
      << "  \"stage_breakdown\": {\n"
      << "    \"docs\": " << stages.docs << ",\n"
      << "    \"paths\": " << stages.paths << ",\n"
      << "    \"parse_ns_per_pub\": " << stages.parse_ns << ",\n"
      << "    \"parse_tree_ns_per_pub\": " << stages.parse_tree_ns << ",\n"
      << "    \"intern_ns_per_pub\": " << stages.intern_ns << ",\n"
      << "    \"match_ns_per_pub\": " << stages.match_ns << ",\n"
      << "    \"merge_ns_per_pub\": " << stages.merge_ns << "\n"
      << "  },\n"
      << "  \"speedup_at_4_workers\": " << speedup_at_4 << ",\n"
      << "  \"speedup_at_4_workers_measured\": " << measured_at_4 << ",\n"
      << "  \"speedup_at_4_workers_projected\": " << projected_at_4 << ",\n"
      << "  \"speedup_basis\": \"" << speedup_basis << "\",\n"
      << "  \"cores_limited\": " << (cores_limited ? "true" : "false")
      << ",\n";
  emit_metrics_snapshot(out, registry, "metrics");
  out << ",\n"
      << "  \"verified_identical\": " << (verified ? "true" : "false") << "\n"
      << "}\n";
  std::cout << (verified ? "results verified identical\n"
                         : "VERIFICATION FAILED\n")
            << "wrote " << flags.get_string("out") << "\n";
  return verified ? 0 : 1;
}
