// Fig. 9 — False positives vs imperfect merging degree.
//
// The paper sweeps D_imperfect from 0 to 0.2 on the PSD workload and
// measures the fraction of matched publications that are false positives
// introduced by imperfect mergers (≤2% for D_imperfect < 0.1; false
// positives occur only inside the network, never at clients).
//
// Subscribers here hold sparse *concrete* interests (random subsets of the
// DTD's root-to-leaf paths), so the merging rules aggregate partial
// sibling families — e.g. 8 of the 10 annotation kinds merge into
// /…/annotation/* at D_imperfect = 0.2 — and published documents carrying
// the unsubscribed siblings travel as in-network false positives.
#include <iostream>
#include <map>
#include <set>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "dtd/graph.hpp"
#include "dtd/universe.hpp"
#include "util/flags.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/xml_gen.hpp"

using namespace xroute;

int main(int argc, char** argv) {
  Flags flags("Fig. 9: false positives vs imperfect merging degree");
  flags.define("subs-per-subscriber", "18", "concrete interests per subscriber");
  flags.define("docs", "60", "documents to publish");
  flags.define("seed", "9", "workload seed");
  if (!flags.parse(argc, argv)) return 0;

  const std::size_t subs_each = flags.get_int("subs-per-subscriber");
  const std::size_t docs = flags.get_int("docs");
  const std::uint64_t seed = flags.get_int64("seed");
  Dtd dtd = psd_dtd();

  // Concrete root-to-leaf interests.
  ElementGraph graph(dtd);
  PathUniverse universe(dtd);
  std::vector<Path> leaf_paths;
  for (const Path& p : universe.paths()) {
    if (graph.is_leaf(p.elements.back())) leaf_paths.push_back(p);
  }

  // Group leaf paths into sibling families (same parent path). A
  // subscriber interested in a topic typically wants most — but not all —
  // of a family: exactly the situation imperfect merging aggregates.
  std::map<std::string, std::vector<std::size_t>> families;
  for (std::size_t i = 0; i < leaf_paths.size(); ++i) {
    Path prefix = leaf_paths[i];
    prefix.elements.pop_back();
    families[prefix.to_string()].push_back(i);
  }

  Rng rng(seed);
  auto as_xpe = [&](const Path& p) {
    std::vector<Step> steps;
    for (const std::string& e : p.elements) {
      steps.push_back(Step{Axis::kChild, e});
    }
    return Xpe::absolute(std::move(steps));
  };
  std::vector<std::vector<Xpe>> interests(4);
  for (auto& list : interests) {
    std::set<std::string> taken;
    // Family-oriented interests: ~85% of each of a few sibling families.
    std::size_t family_budget = subs_each;
    for (auto it = families.begin();
         it != families.end() && family_budget > 0; ++it) {
      if (it->second.size() < 3 || !rng.chance(0.8)) continue;
      // Each family is wanted to a different degree of completeness, so
      // the sweep's tolerance admits more and more of them.
      double completeness = 0.6 + 0.35 * rng.uniform();
      for (std::size_t idx : it->second) {
        if (family_budget == 0) break;
        if (!rng.chance(completeness)) continue;
        Xpe xpe = as_xpe(leaf_paths[idx]);
        if (taken.insert(xpe.to_string()).second) {
          list.push_back(std::move(xpe));
          --family_budget;
        }
      }
    }
    // Top up with random singles.
    while (list.size() < subs_each) {
      Xpe xpe = as_xpe(leaf_paths[rng.index(leaf_paths.size())]);
      if (taken.insert(xpe.to_string()).second) list.push_back(std::move(xpe));
    }
  }

  std::vector<std::pair<std::vector<Path>, std::size_t>> documents;
  std::size_t publications = 0;
  Rng doc_rng(seed + 1);
  XmlGenOptions gen;
  gen.more_prob = 0.6;  // richer documents: more annotation variety
  for (std::size_t d = 0; d < docs; ++d) {
    XmlDocument doc = generate_document(dtd, doc_rng, gen);
    auto paths = extract_paths(doc);
    publications += paths.size();
    documents.emplace_back(std::move(paths), doc.byte_size());
  }

  std::cout << "Fig. 9 reproduction: false positives vs D_imperfect "
            << "(7-broker overlay, 4 subscribers x " << subs_each
            << " concrete XPEs, " << publications << " publications)\n\n";

  TextTable table({"D_imperfect", "matched pubs", "false positives",
                   "FP (%)", "RTS total", "merges"});
  for (double degree : {0.0, 0.05, 0.10, 0.15, 0.20}) {
    Network::Options options;
    options.topology = complete_binary_tree(3);
    options.strategy = RoutingStrategy::with_adv_with_cov_ipm(degree);
    options.dtd = dtd;
    options.seed = seed;
    options.processing_scale = 0.0;
    options.merge_interval = 6;
    Network net(std::move(options));

    int publisher = net.add_publisher(0);
    net.run();
    auto leaves = complete_binary_tree(3).leaf_brokers();
    for (std::size_t i = 0; i < interests.size(); ++i) {
      int sub = net.add_subscriber(leaves[i]);
      for (const Xpe& x : interests[i]) net.subscribe(sub, x);
    }
    net.run();
    for (const auto& [paths, bytes] : documents) {
      net.publish_paths(publisher, paths, bytes);
    }
    net.run();

    std::size_t merges = 0;
    for (std::size_t b = 0; b < net.simulator().broker_count(); ++b) {
      merges += net.simulator().broker(static_cast<int>(b)).merges_applied();
    }
    // The paper's metric: matched publications that are false positives —
    // merger matches not backed by any merged original, anywhere in the
    // network.
    const std::size_t matched = net.stats().publication_matches();
    const std::size_t fp = net.stats().merger_false_matches();
    table.add_row({TextTable::fmt(degree), TextTable::fmt(matched),
                   TextTable::fmt(fp),
                   TextTable::fmt(matched > 0 ? 100.0 * fp / matched : 0.0),
                   TextTable::fmt(net.total_prt_size()),
                   TextTable::fmt(merges)});
  }
  table.print(std::cout);
  std::cout << "\nfalse positives rise with the tolerated imperfect degree"
            << " and stay inside\nthe network (suppressed at the edge); the"
            << " paper keeps FP <= 2% below 0.1.\n";
  return 0;
}
