// Transport loopback echo: frames/sec and per-frame RTT percentiles.
//
// A bare Transport pair on 127.0.0.1 — the server echoes every frame
// back verbatim — measures the floor the overlay pays per message:
// encode, two socket hops, frame reassembly, decode. Two message shapes
// bracket the real traffic: Subscribe (a dozen payload bytes, the
// steady-state control frame) and SyncState (a multi-KiB recovery
// blob). Latency is a sequential ping-pong (one frame in flight);
// throughput is a pipelined burst. Results land in BENCH_transport.json
// with the echo registry's full metrics snapshot.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "metrics_snapshot.hpp"
#include "obs/metrics.hpp"
#include "transport/event_loop.hpp"
#include "transport/transport.hpp"
#include "util/flags.hpp"
#include "wire/codec.hpp"
#include "xpath/parser.hpp"

using namespace xroute;
using transport::Connection;
using transport::EventLoop;
using transport::Transport;

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Nearest-rank percentile over a sorted sample vector.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::size_t rank = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

struct EchoResult {
  std::string label;
  std::size_t frame_bytes = 0;
  std::size_t pingpong_frames = 0;
  std::size_t burst_frames = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double frames_per_sec = 0.0;
  double mbytes_per_sec = 0.0;
};

Transport::Options endpoint(wire::Hello::PeerKind kind, std::uint32_t id) {
  Transport::Options options;
  options.self = wire::Hello{kind, id};
  return options;
}

/// One echo endpoint pair over loopback TCP. The server loop re-encodes
/// and returns every message frame; the client loop counts arrivals.
class EchoRig {
 public:
  EchoRig() {
    server_transport_.set_frame_handler(
        [](Connection* conn, wire::Decoded&& decoded) {
          conn->send(wire::encode_frame(decoded.message));
        });
    client_transport_.set_peer_handler(
        [this](Connection* conn, const wire::Hello&) {
          conn_.store(conn, std::memory_order_release);
        });
    client_transport_.set_frame_handler(
        [this](Connection*, wire::Decoded&&) {
          echoed_.fetch_add(1, std::memory_order_acq_rel);
        });

    std::atomic<std::uint16_t> port{0};
    server_loop_.post([this, &port] {
      port.store(server_transport_.listen(0), std::memory_order_release);
    });
    server_thread_ = std::thread([this] { server_loop_.run(); });
    client_thread_ = std::thread([this] { client_loop_.run(); });
    while (port.load(std::memory_order_acquire) == 0) {
      std::this_thread::yield();
    }
    std::uint16_t bound = port.load(std::memory_order_acquire);
    client_loop_.post(
        [this, bound] { client_transport_.dial("127.0.0.1", bound); });
    while (conn_.load(std::memory_order_acquire) == nullptr) {
      std::this_thread::yield();
    }
  }

  ~EchoRig() {
    client_loop_.post([this] { client_transport_.shutdown(); });
    server_loop_.post([this] { server_transport_.shutdown(); });
    client_loop_.stop();
    server_loop_.stop();
    client_thread_.join();
    server_thread_.join();
  }

  /// Sends `frame` once from the client loop thread.
  void send(const std::vector<std::uint8_t>& frame) {
    Connection* conn = conn_.load(std::memory_order_acquire);
    client_loop_.post([conn, frame] { conn->send(frame); });
  }

  std::size_t echoed() const { return echoed_.load(std::memory_order_acquire); }

  void wait_echoed(std::size_t target) {
    while (echoed() < target) std::this_thread::yield();
  }

 private:
  EventLoop server_loop_;
  EventLoop client_loop_;
  Transport server_transport_{&server_loop_,
                              endpoint(wire::Hello::PeerKind::kBroker, 0)};
  Transport client_transport_{&client_loop_,
                              endpoint(wire::Hello::PeerKind::kClient, 1)};
  std::thread server_thread_;
  std::thread client_thread_;
  std::atomic<Connection*> conn_{nullptr};
  std::atomic<std::size_t> echoed_{0};
};

EchoResult run_echo(const std::string& label, const Message& message,
                    std::size_t pingpong_frames, std::size_t burst_frames,
                    MetricsRegistry& registry) {
  const std::vector<std::uint8_t> frame = wire::encode_frame(message);
  EchoRig rig;

  EchoResult result;
  result.label = label;
  result.frame_bytes = frame.size();
  result.pingpong_frames = pingpong_frames;
  result.burst_frames = burst_frames;

  // Warm-up: first exchanges pay one-off costs (handshake tail, page
  // faults, branch training) that do not represent steady state.
  for (std::size_t i = 0; i < 32; ++i) {
    std::size_t before = rig.echoed();
    rig.send(frame);
    rig.wait_echoed(before + 1);
  }

  // ---- Latency: sequential ping-pong, one frame in flight -------------
  Histogram& rtt = registry.histogram("transport.echo_rtt_ms", {{"size", label}});
  std::vector<double> samples;
  samples.reserve(pingpong_frames);
  for (std::size_t i = 0; i < pingpong_frames; ++i) {
    std::size_t before = rig.echoed();
    Clock::time_point t0 = Clock::now();
    rig.send(frame);
    rig.wait_echoed(before + 1);
    double ms = ms_between(t0, Clock::now());
    samples.push_back(ms);
    rtt.observe(ms);
  }
  std::sort(samples.begin(), samples.end());
  result.p50_ms = percentile(samples, 0.50);
  result.p99_ms = percentile(samples, 0.99);

  // ---- Throughput: pipelined burst, echoes drained concurrently -------
  std::size_t before = rig.echoed();
  Clock::time_point t0 = Clock::now();
  for (std::size_t i = 0; i < burst_frames; ++i) rig.send(frame);
  rig.wait_echoed(before + burst_frames);
  double seconds = ms_between(t0, Clock::now()) / 1000.0;
  result.frames_per_sec = static_cast<double>(burst_frames) / seconds;
  // Bytes cross the wire twice (out and echoed back); report one-way.
  result.mbytes_per_sec =
      result.frames_per_sec * static_cast<double>(frame.size()) / (1024.0 * 1024.0);

  registry.counter("transport.echo_frames", {{"size", label}})
      .inc(pingpong_frames + burst_frames + 32);
  registry.counter("transport.echo_bytes", {{"size", label}})
      .inc((pingpong_frames + burst_frames + 32) * frame.size());

  std::cout << label << ": " << frame.size() << " B/frame, RTT p50 "
            << result.p50_ms << " ms, p99 " << result.p99_ms << " ms, "
            << static_cast<std::size_t>(result.frames_per_sec) << " frames/s ("
            << result.mbytes_per_sec << " MiB/s)\n";
  return result;
}

void emit(std::ostream& os, const EchoResult& r) {
  os << "    \"frame_bytes\": " << r.frame_bytes << ",\n"
     << "    \"pingpong_frames\": " << r.pingpong_frames << ",\n"
     << "    \"burst_frames\": " << r.burst_frames << ",\n"
     << "    \"rtt_p50_ms\": " << r.p50_ms << ",\n"
     << "    \"rtt_p99_ms\": " << r.p99_ms << ",\n"
     << "    \"frames_per_sec\": " << r.frames_per_sec << ",\n"
     << "    \"mbytes_per_sec\": " << r.mbytes_per_sec << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("Transport loopback echo: frames/sec and RTT percentiles");
  flags.define("pingpong", "2000", "sequential round-trips per size");
  flags.define("burst", "20000", "pipelined frames per size (small)");
  flags.define("burst-large", "1000", "pipelined frames per size (large)");
  flags.define("state-kib", "64", "SyncState payload size in KiB");
  flags.define("out", "BENCH_transport.json", "output file");
  if (!flags.parse(argc, argv)) return 0;

  const std::size_t pingpong = flags.get_int("pingpong");
  const std::size_t burst = flags.get_int("burst");
  const std::size_t burst_large = flags.get_int("burst-large");
  const std::size_t state_kib = flags.get_int("state-kib");

  MetricsRegistry registry;

  // Small: the steady-state control frame.
  Message small = Message::subscribe(parse_xpe("/nitf/head/title"));

  // Large: a recovery blob shaped like a link-state export.
  std::string state = "xroute-link-sync 1\n";
  while (state.size() < state_kib * 1024) {
    state += "sub 3 /a/b/c[@id='42']\nadv 1 /a/#\n";
  }
  Message large = Message::sync_state(std::move(state));

  EchoResult small_result =
      run_echo("small", small, pingpong, burst, registry);
  EchoResult large_result =
      run_echo("large", large, pingpong, burst_large, registry);

  std::ofstream out(flags.get_string("out"));
  out << "{\n"
      << "  \"bench\": \"transport_echo\",\n"
      << "  \"config\": {\n"
      << "    \"pingpong\": " << pingpong << ",\n"
      << "    \"burst_small\": " << burst << ",\n"
      << "    \"burst_large\": " << burst_large << ",\n"
      << "    \"state_kib\": " << state_kib << "\n"
      << "  },\n"
      << "  \"small_subscribe\": {\n";
  emit(out, small_result);
  out << "  },\n"
      << "  \"large_sync_state\": {\n";
  emit(out, large_result);
  out << "  },\n";
  emit_metrics_snapshot(out, registry, "metrics");
  out << "\n}\n";
  std::cout << "wrote " << flags.get_string("out") << "\n";
  return 0;
}
