// Baseline comparison: covering subscription tree vs a YFilter-style
// shared-NFA matcher.
//
// Paper §5: "the performance of non-covering-based routing in the original
// system has been evaluated against YFilter in our previous work [16]. For
// some scenarios (i.e., the XPE workload with a high percentage of matched
// expressions, and with many wildcards and descendant operators), our
// system outperformed YFilter. For a contrasting workload with a very low
// matching percentage, YFilter outperformed us."
//
// This bench reproduces that crossover with both matchers implemented in
// this repository, plus the flat scan as the common baseline.
#include <iostream>

#include "core/experiment.hpp"
#include "index/subscription_tree.hpp"
#include "match/pub_match.hpp"
#include "match/yfilter.hpp"
#include "router/routing_tables.hpp"
#include "util/flags.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/xml_gen.hpp"
#include "workload/xpath_gen.hpp"

using namespace xroute;

namespace {

struct WorkloadResult {
  double flat_ms = 0, tree_ms = 0, yfilter_ms = 0;
  double match_pct = 0;
};

WorkloadResult run(const Dtd& dtd, const XpathGenOptions& xopts,
                   std::size_t docs, std::uint64_t seed) {
  auto queries = generate_xpaths(dtd, xopts);
  Rng rng(seed);
  std::vector<Path> pubs;
  for (std::size_t d = 0; d < docs; ++d) {
    for (Path& p : extract_paths(generate_document(dtd, rng, {}))) {
      pubs.push_back(std::move(p));
    }
  }

  WorkloadResult result;
  std::size_t match_events = 0;

  {  // flat scan
    Prt flat(/*covering=*/false);
    Rng hop_rng(1);
    for (const Xpe& q : queries) flat.insert(q, IfaceId{hop_rng.uniform_int(0, 3)});
    Stopwatch watch;
    std::size_t sink = 0;
    for (const Path& p : pubs) sink += flat.match_hops(p).size();
    result.flat_ms = watch.elapsed_ms() / static_cast<double>(pubs.size());
    (void)sink;
  }
  {  // covering subscription tree
    Prt tree(/*covering=*/true);
    Rng hop_rng(1);
    for (const Xpe& q : queries) tree.insert(q, IfaceId{hop_rng.uniform_int(0, 3)});
    Stopwatch watch;
    std::size_t sink = 0;
    for (const Path& p : pubs) sink += tree.match_hops(p).size();
    result.tree_ms = watch.elapsed_ms() / static_cast<double>(pubs.size());
    (void)sink;
  }
  {  // YFilter-style NFA
    YFilterIndex index;
    for (const Xpe& q : queries) index.add(q);
    Stopwatch watch;
    for (const Path& p : pubs) match_events += index.match(p).size();
    result.yfilter_ms = watch.elapsed_ms() / static_cast<double>(pubs.size());
  }
  // "Matching percentage": matched (query, publication) pairs.
  result.match_pct = 100.0 * static_cast<double>(match_events) /
                     (static_cast<double>(pubs.size()) *
                      static_cast<double>(queries.size()));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("covering tree vs YFilter-style NFA (paper §5 remark)");
  flags.define("queries", "2000", "queries per workload");
  flags.define("docs", "60", "documents to publish");
  flags.define("seed", "12", "workload seed");
  if (!flags.parse(argc, argv)) return 0;

  const std::size_t n = flags.get_int("queries");
  const std::size_t docs = flags.get_int("docs");
  const std::uint64_t seed = flags.get_int64("seed");

  // Workload H: high matching percentage, many wildcards and descendant
  // operators (the regime where the paper's system beat YFilter).
  XpathGenOptions high;
  high.count = n;
  high.seed = seed;
  high.wildcard_prob = 0.35;
  high.descendant_prob = 0.35;
  high.min_length = 2;
  high.max_length = 6;

  // Workload L: selective concrete queries, very low matching percentage
  // (the regime where YFilter won).
  XpathGenOptions low;
  low.count = n;
  low.seed = seed + 1;
  low.wildcard_prob = 0.0;
  low.descendant_prob = 0.0;
  low.relative_prob = 0.0;
  low.leaf_only = true;
  low.predicate_prob = 0.6;  // predicates make most of them miss

  std::cout << "Baseline comparison (per-publication matching time, ms; "
            << n << " queries)\n\n";
  TextTable table({"workload", "match %", "flat scan", "covering tree",
                   "YFilter NFA"});
  WorkloadResult h = run(psd_dtd(), high, docs, seed + 2);
  table.add_row({"high-match, many * and //", TextTable::fmt(h.match_pct, 1),
                 TextTable::fmt(h.flat_ms, 4), TextTable::fmt(h.tree_ms, 4),
                 TextTable::fmt(h.yfilter_ms, 4)});
  WorkloadResult l = run(news_dtd(), low, docs, seed + 3);
  table.add_row({"low-match, selective", TextTable::fmt(l.match_pct, 1),
                 TextTable::fmt(l.flat_ms, 4), TextTable::fmt(l.tree_ms, 4),
                 TextTable::fmt(l.yfilter_ms, 4)});
  table.print(std::cout);

  std::cout
      << "\nfindings: covering-tree pruning pays off most on the selective\n"
      << "workload (vs the flat scan), while the shared-prefix NFA is the\n"
      << "fastest pure matcher on both — consistent with the paper's remark\n"
      << "that YFilter wins at low matching percentages. (The paper's own\n"
      << "high-match win was for the predicate-based matching engine of\n"
      << "[16], a different trade-off than the covering tree, which also\n"
      << "maintains per-subscription hop state and covering relations that\n"
      << "a bare NFA does not.)\n";
  return 0;
}
