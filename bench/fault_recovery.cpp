// Fault-tolerant dissemination: reliability overhead and crash recovery.
//
// Two questions (DESIGN.md §7):
//
//   1. What does the reliable transport cost as links degrade? Sweeps the
//      drop rate over {0, 1%, 5%, 10%, 20%} (plus duplication/reordering)
//      and records retransmissions, ack traffic and end-to-end delivery
//      equality against a fault-free reference run.
//   2. How fast does a crashed broker come back? Compares the two
//      recovery paths — neighbour resync handshake vs snapshot restore —
//      by handshake duration and by time until the network requiesces.
//
// Every run asserts delivery equality: each subscriber's notification set
// must be identical to the fault-free reference, with zero duplicates.
// --soak-seeds N adds a seeded matrix (N seeds x {1% loss, 10% loss,
// crash+resync, crash+snapshot}) and the process exits non-zero if any
// cell fails — the CI fault-matrix job runs exactly this.
//
// Results land in BENCH_fault.json.
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "metrics_snapshot.hpp"
#include "net/fault.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "router/snapshot.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

using namespace xroute;

namespace {

enum class Recovery { kNone, kResync, kSnapshot };

const char* to_string(Recovery r) {
  switch (r) {
    case Recovery::kNone: return "none";
    case Recovery::kResync: return "resync";
    case Recovery::kSnapshot: return "snapshot";
  }
  return "?";
}

struct Scenario {
  double drop = 0.0;
  double dup = 0.0;
  double reorder = 0.0;
  Recovery recovery = Recovery::kNone;
  std::uint64_t seed = 1;
  std::size_t documents = 60;
};

struct Outcome {
  std::vector<std::set<std::uint64_t>> delivered;
  std::size_t notifications = 0;
  std::size_t duplicates = 0;
  std::size_t frames_dropped = 0;
  std::size_t retransmits = 0;
  std::size_t retransmit_failures = 0;
  std::size_t acks = 0;
  std::size_t ack_bytes = 0;
  std::size_t broker_bytes = 0;
  double resync_ms = 0.0;    ///< handshake duration (resync runs)
  double recovery_ms = 0.0;  ///< crash -> network requiesced
};

/// One experiment: 7-broker tree, subscribers at the leaves, publisher at
/// the root; half the documents, a crash/recovery at a quiescent point,
/// the other half. `faulted=false` gives the clean reference (no faults,
/// no crash) the notification sets are compared against. When
/// `metrics_json` is given, the run's full metrics-registry dump is
/// captured into it (the simulator dies with this scope).
Outcome run_scenario(const Scenario& s, bool faulted,
                     std::string* metrics_json = nullptr) {
  Simulator sim(Simulator::Options{0.0});
  Topology topology = complete_binary_tree(3);
  Broker::Config config;
  config.use_advertisements = false;
  for (std::size_t i = 0; i < topology.num_brokers; ++i) sim.add_broker(config);
  for (auto [a, b] : topology.edges) sim.connect(a, b, LinkConfig{});

  const char* xpes[] = {"/a", "/a/b", "//c", "/d//e"};
  std::vector<int> subscribers;
  std::vector<int> leaves = topology.leaf_brokers();
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    int client = sim.attach_client(leaves[i]);
    sim.subscribe(client, parse_xpe(xpes[i % 4]));
    subscribers.push_back(client);
  }
  int publisher = sim.attach_client(0);

  if (faulted) {
    FaultProfile profile;
    profile.drop_prob = s.drop;
    profile.dup_prob = s.dup;
    profile.reorder_prob = s.reorder;
    profile.reorder_jitter_ms = 4.0;
    sim.enable_fault_injection(s.seed);
    sim.set_default_link_faults(profile);
  }
  sim.run();

  const char* paths[] = {"/a/b", "/a/b/c", "/d/x/e", "/q", "/a"};
  auto publish_batch = [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      sim.publish_paths(publisher, {parse_path(paths[i % 5])}, 200);
    }
    sim.run();
  };

  publish_batch(s.documents / 2);

  Outcome outcome;
  if (faulted && s.recovery != Recovery::kNone) {
    Rng pick(s.seed);
    int victim = static_cast<int>(pick.index(topology.num_brokers));
    double crashed_at = sim.now();
    if (s.recovery == Recovery::kResync) {
      sim.restart_broker(victim, "", /*resync=*/true);
    } else {
      sim.restart_broker(victim, snapshot_to_string(sim.broker(victim)));
    }
    Simulator::QuiesceReport report = sim.run_until_quiescent();
    // Snapshot restore needs no network traffic at all, in which case
    // last_activity still points before the crash: recovery was free.
    outcome.recovery_ms =
        report.last_activity > crashed_at ? report.last_activity - crashed_at
                                          : 0.0;
    if (!sim.stats().resync_durations_ms().empty()) {
      outcome.resync_ms = sim.stats().resync_durations_ms().front();
    }
  }

  publish_batch(s.documents - s.documents / 2);

  for (int client : subscribers) {
    outcome.delivered.push_back(sim.delivered_docs(client));
  }
  outcome.notifications = sim.stats().notifications();
  outcome.duplicates = sim.stats().duplicate_notifications();
  outcome.frames_dropped = sim.stats().frames_dropped();
  outcome.retransmits = sim.stats().retransmits();
  outcome.retransmit_failures = sim.stats().retransmit_failures();
  outcome.acks = sim.stats().acks_sent();
  outcome.ack_bytes = sim.stats().ack_bytes();
  outcome.broker_bytes = sim.stats().total_broker_bytes();
  if (metrics_json) {
    std::ostringstream dump;
    sim.stats().registry().write_json(dump);
    *metrics_json = dump.str();
  }
  return outcome;
}

struct Row {
  Scenario scenario;
  Outcome outcome;
  bool equal = false;
};

Row run_row(const Scenario& s, std::string* metrics_json = nullptr) {
  Row row;
  row.scenario = s;
  Outcome reference = run_scenario(s, /*faulted=*/false);
  row.outcome = run_scenario(s, /*faulted=*/true, metrics_json);
  row.equal = reference.delivered == row.outcome.delivered &&
              row.outcome.duplicates == 0;
  return row;
}

void emit_row(std::ostream& out, const Row& row, bool last) {
  const Scenario& s = row.scenario;
  const Outcome& o = row.outcome;
  out << "    {\"drop\": " << s.drop << ", \"dup\": " << s.dup
      << ", \"reorder\": " << s.reorder << ", \"recovery\": \""
      << to_string(s.recovery) << "\", \"seed\": " << s.seed
      << ", \"notifications\": " << o.notifications
      << ", \"duplicates\": " << o.duplicates
      << ", \"frames_dropped\": " << o.frames_dropped
      << ", \"retransmits\": " << o.retransmits
      << ", \"retransmit_failures\": " << o.retransmit_failures
      << ", \"acks\": " << o.acks << ", \"ack_bytes\": " << o.ack_bytes
      << ", \"broker_bytes\": " << o.broker_bytes
      << ", \"resync_ms\": " << o.resync_ms
      << ", \"recovery_ms\": " << o.recovery_ms
      << ", \"delivery_equal\": " << (row.equal ? "true" : "false") << "}"
      << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("Reliable-transport overhead and crash-recovery latency");
  flags.define("documents", "60", "documents published per run");
  flags.define("seed", "1", "base seed for the sweep");
  flags.define("soak-seeds", "0",
               "extra seeded soak matrix: N seeds x {1% loss, 10% loss, "
               "crash+resync, crash+snapshot}; non-zero exit on any failure");
  flags.define("out", "BENCH_fault.json", "output file");
  if (!flags.parse(argc, argv)) return 0;

  const std::size_t documents = flags.get_int("documents");
  const std::uint64_t seed = flags.get_int64("seed");
  const std::size_t soak_seeds = flags.get_int("soak-seeds");
  bool all_equal = true;

  // ---- Drop-rate sweep (reliability overhead) -------------------------
  std::vector<Row> sweep;
  for (double drop : {0.0, 0.01, 0.05, 0.10, 0.20}) {
    Scenario s;
    s.drop = drop;
    s.dup = 0.02;
    s.reorder = 0.05;
    s.seed = seed;
    s.documents = documents;
    Row row = run_row(s);
    all_equal = all_equal && row.equal;
    std::cout << "drop " << drop << ": retransmits "
              << row.outcome.retransmits << ", acks " << row.outcome.acks
              << ", delivery " << (row.equal ? "EQUAL" : "MISMATCH") << "\n";
    sweep.push_back(row);
  }

  // ---- Recovery comparison (resync vs snapshot) -----------------------
  // The resync run's full metrics snapshot (retransmit/crash counters,
  // resync-duration histogram, per-broker series) is embedded in the
  // output JSON — it is the most instrumented cell of the bench.
  std::vector<Row> recovery;
  std::string metrics_json;
  for (Recovery mode : {Recovery::kResync, Recovery::kSnapshot}) {
    Scenario s;
    s.drop = 0.05;
    s.dup = 0.02;
    s.reorder = 0.05;
    s.recovery = mode;
    s.seed = seed;
    s.documents = documents;
    Row row = run_row(s, mode == Recovery::kResync ? &metrics_json : nullptr);
    all_equal = all_equal && row.equal;
    std::cout << "recovery " << to_string(mode) << ": handshake "
              << row.outcome.resync_ms << " ms, requiesced after "
              << row.outcome.recovery_ms << " ms, delivery "
              << (row.equal ? "EQUAL" : "MISMATCH") << "\n";
    recovery.push_back(row);
  }

  // ---- Seeded soak matrix (CI) ----------------------------------------
  std::vector<Row> soak;
  for (std::size_t i = 0; i < soak_seeds; ++i) {
    for (int cell = 0; cell < 4; ++cell) {
      Scenario s;
      s.seed = seed + 100 + i;
      s.documents = documents;
      switch (cell) {
        case 0: s.drop = 0.01; break;
        case 1: s.drop = 0.10; break;
        case 2: s.drop = 0.05; s.recovery = Recovery::kResync; break;
        case 3: s.drop = 0.05; s.recovery = Recovery::kSnapshot; break;
      }
      Row row = run_row(s);
      all_equal = all_equal && row.equal;
      if (!row.equal) {
        std::cerr << "SOAK MISMATCH: seed " << s.seed << " drop " << s.drop
                  << " recovery " << to_string(s.recovery) << "\n";
      }
      soak.push_back(row);
    }
  }

  std::ofstream out(flags.get_string("out"));
  out << "{\n"
      << "  \"bench\": \"fault_recovery\",\n"
      << "  \"config\": {\"topology\": \"tree7\", \"documents\": " << documents
      << ", \"seed\": " << seed << ", \"soak_seeds\": " << soak_seeds
      << "},\n"
      << "  \"drop_sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    emit_row(out, sweep[i], i + 1 == sweep.size());
  }
  out << "  ],\n  \"recovery\": [\n";
  for (std::size_t i = 0; i < recovery.size(); ++i) {
    emit_row(out, recovery[i], i + 1 == recovery.size());
  }
  out << "  ],\n  \"soak\": [\n";
  for (std::size_t i = 0; i < soak.size(); ++i) {
    emit_row(out, soak[i], i + 1 == soak.size());
  }
  out << "  ],\n";
  emit_metrics_snapshot(out, metrics_json, "metrics");
  out << ",\n"
      << "  \"all_delivery_equal\": " << (all_equal ? "true" : "false")
      << "\n}\n";

  std::cout << (all_equal ? "all runs delivery-equal\n"
                          : "DELIVERY MISMATCH\n")
            << "wrote " << flags.get_string("out") << "\n";
  return all_equal ? 0 : 1;
}
