// Fig. 10 — Notification delay vs hops for PSD documents (2K/10K/20K),
// with and without covering, on the PlanetLab-profile chain.
#include "delay_bench.hpp"
#include "workload/dtd_corpus.hpp"

int main(int argc, char** argv) {
  using namespace xroute;
  return benchsupport::delay_figure_main(
      "Fig. 10 (PSD XML)", psd_dtd(), {2048, 10240, 20480}, argc, argv);
}
