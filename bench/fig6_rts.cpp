// Fig. 6 — Routing table size vs number of XPath queries.
//
// The paper inserts 100,000 NITF XPEs from two data sets (Set A: 90%
// covering rate, Set B: 50%) and shows the covering technique shrinking
// the next-hop routing table to roughly (1 - rate) * n, against the y = x
// no-covering baseline.
//
// Defaults are scaled down (see DESIGN.md: our corpus DTD's query space is
// smaller than NITF's, so the sets are built by the covering-rate-
// controlled constructor and the achieved rates are printed). --full runs
// a larger sweep.
#include <iostream>

#include "core/experiment.hpp"
#include "index/subscription_tree.hpp"
#include "util/flags.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/set_builder.hpp"

using namespace xroute;

namespace {

/// The next-hop routing table size: subscriptions this broker would
/// forward, i.e. those not covered by any other (tree tops without super
/// sources). Without covering every subscription is forwarded.
std::size_t forwarded_table_size(const SubscriptionTree& tree) {
  std::size_t count = 0;
  for (const auto& node : tree.root()->children) {
    if (node->super_sources.empty()) ++count;
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("Fig. 6: routing table size vs number of XPath queries");
  flags.define("count", "2000", "total queries per data set");
  flags.define("points", "8", "number of measurement points");
  flags.define("rate-a", "0.9", "Set A target covering rate");
  flags.define("rate-b", "0.5", "Set B target covering rate");
  flags.define("dtd", "news", "corpus DTD (news|psd)");
  flags.define("seed", "1", "workload seed");
  flags.define("full", "false", "larger sweep (slower)");
  if (!flags.parse(argc, argv)) return 0;

  const std::size_t count =
      flags.get_bool("full") ? 11000 : static_cast<std::size_t>(flags.get_int("count"));
  const std::size_t points = flags.get_int("points");
  Dtd dtd = corpus_dtd(flags.get_string("dtd"));

  std::cout << "Fig. 6 reproduction: RTS vs #XPEs (" << flags.get_string("dtd")
            << " DTD, n=" << count << ")\n";

  CoverSetOptions a_opts;
  a_opts.count = count;
  a_opts.target_rate = flags.get_double("rate-a");
  a_opts.seed = flags.get_int64("seed");
  CoverSet set_a = build_covering_set(dtd, a_opts);

  CoverSetOptions b_opts = a_opts;
  b_opts.target_rate = flags.get_double("rate-b");
  b_opts.seed = flags.get_int64("seed") + 1;
  CoverSet set_b = build_covering_set(dtd, b_opts);

  std::cout << "Set A: " << set_a.xpes.size() << " XPEs, covering rate "
            << TextTable::fmt(set_a.constructed_rate) << " (target "
            << flags.get_double("rate-a") << ")\n";
  std::cout << "Set B: " << set_b.xpes.size() << " XPEs, covering rate "
            << TextTable::fmt(set_b.constructed_rate) << " (target "
            << flags.get_double("rate-b") << ")\n\n";

  // The two sets may have different sizes (the builder caps at the
  // DTD's uncovered-capacity for the target rate), so each is swept over
  // its own length; rows align by fraction of the set inserted.
  SubscriptionTree tree_a, tree_b;
  TextTable table({"fraction", "Set A: n", "covering RTS", "Set B: n",
                   "covering RTS "});
  std::size_t ia = 0, ib = 0;
  for (std::size_t point = 1; point <= points; ++point) {
    std::size_t goal_a = set_a.xpes.size() * point / points;
    std::size_t goal_b = set_b.xpes.size() * point / points;
    while (ia < goal_a) tree_a.insert(set_a.xpes[ia++], IfaceId{0});
    while (ib < goal_b) tree_b.insert(set_b.xpes[ib++], IfaceId{0});
    table.add_row({TextTable::fmt(100.0 * point / points, 0) + "%",
                   TextTable::fmt(goal_a),
                   TextTable::fmt(forwarded_table_size(tree_a)),
                   TextTable::fmt(goal_b),
                   TextTable::fmt(forwarded_table_size(tree_b))});
  }
  table.print(std::cout);
  std::cout << "(no-covering baseline: RTS = n)\n";

  double reduction_a =
      100.0 * (1.0 - static_cast<double>(forwarded_table_size(tree_a)) /
                         static_cast<double>(set_a.xpes.size()));
  double reduction_b =
      100.0 * (1.0 - static_cast<double>(forwarded_table_size(tree_b)) /
                         static_cast<double>(set_b.xpes.size()));
  std::cout << "\ncovering reduces the forwarded routing table by "
            << TextTable::fmt(reduction_a, 1) << "% (Set A) and "
            << TextTable::fmt(reduction_b, 1)
            << "% (Set B); the paper reports up to ~90% on its Set A.\n";
  return 0;
}
