// Fig. 11 — Notification delay vs hops for NEWS documents (2K/20K/40K),
// with and without covering, on the PlanetLab-profile chain.
#include "delay_bench.hpp"
#include "workload/dtd_corpus.hpp"

int main(int argc, char** argv) {
  using namespace xroute;
  return benchsupport::delay_figure_main(
      "Fig. 11 (NEWS XML)", news_dtd(), {2048, 20480, 40960}, argc, argv);
}
