// Table 2 — Network traffic and notification delay, 7-broker overlay.
//
// The paper's small overlay: a 3-level binary tree (7 brokers), one
// subscriber per leaf broker with 1,000 distinct PSD XPEs each, 50 XML
// documents (4,182 publications), one randomly attached publisher. Six
// routing strategies are compared; traffic counts every message received
// by any broker.
#include <iostream>

#include "network_bench.hpp"
#include "util/flags.hpp"
#include "workload/dtd_corpus.hpp"

using namespace xroute;
using namespace xroute::benchsupport;

int main(int argc, char** argv) {
  Flags flags("Table 2: 7-broker network, strategy matrix");
  flags.define("subs-per-subscriber", "300", "XPEs per subscriber (paper: 1000)");
  flags.define("docs", "25", "documents to publish (paper: 50)");
  flags.define("imperfect", "0.1", "imperfect-merging tolerance");
  flags.define("seed", "5", "workload seed");
  flags.define("processing-scale", "1.0",
               "fold measured broker processing time into simulated delay");
  flags.define("full", "false", "paper-scale workload (slower)");
  if (!flags.parse(argc, argv)) return 0;

  const bool full = flags.get_bool("full");
  const std::size_t subs_each =
      full ? 1000 : flags.get_int("subs-per-subscriber");
  const std::size_t docs = full ? 50 : flags.get_int("docs");
  const std::size_t levels = 3;  // 7 brokers, 4 leaf subscribers

  Dtd dtd = psd_dtd();
  NetworkWorkload w = make_network_workload(
      dtd, /*subscribers=*/4, subs_each, docs, flags.get_int64("seed"));

  std::cout << "Table 2 reproduction: 7-broker binary tree, 4 subscribers x "
            << subs_each << " XPEs, " << docs << " documents ("
            << w.publications << " publications)\n\n";

  TextTable table({"Method", "Network Traffic", "(adv/sub/pub)", "Delay (ms)",
                   "RTS total", "in-net FPs"});
  for (const StrategySpec& spec :
       paper_strategy_matrix(flags.get_double("imperfect"))) {
    NetworkRun run =
        run_strategy(dtd, w, spec.strategy, levels, flags.get_int64("seed"),
                     flags.get_double("processing-scale"));
    table.add_row({spec.name, TextTable::fmt(run.traffic),
                   TextTable::fmt(run.adv_msgs) + "/" +
                       TextTable::fmt(run.sub_msgs) + "/" +
                       TextTable::fmt(run.pub_msgs),
                   TextTable::fmt(run.delay_ms),
                   TextTable::fmt(run.total_prt),
                   TextTable::fmt(run.false_positives)});
  }
  table.print(std::cout);
  std::cout << "\npaper shape: advertisements cut traffic to ~69%; adv+cov"
            << " to ~66%; merging cuts further; IPM adds ~1% traffic back\n"
            << "(false positives) while reducing delay via smaller tables.\n";
  return 0;
}
