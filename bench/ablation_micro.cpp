// Ablation micro-benchmarks (google-benchmark) for the design choices
// DESIGN.md calls out:
//   * KMP vs naive window search in RelExprAndAdv / RelSimCov,
//   * subscription-tree (pruned) vs flat publication matching,
//   * the literal Fig. 3 recursive matcher vs the exact automaton,
//   * subscription-tree insertion with and without covered-tracking.
#include <benchmark/benchmark.h>

#include <vector>

#include "adv/derive.hpp"
#include "index/subscription_tree.hpp"
#include "match/adv_match.hpp"
#include "match/covering.hpp"
#include "match/rec_adv_match.hpp"
#include "router/routing_tables.hpp"
#include "util/rng.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/set_builder.hpp"
#include "workload/xml_gen.hpp"
#include "workload/xpath_gen.hpp"

namespace {

using namespace xroute;

std::vector<Xpe> bench_xpes(std::size_t count, double wildcard,
                            double descendant) {
  XpathGenOptions options;
  options.count = count;
  options.seed = 42;
  options.wildcard_prob = wildcard;
  options.descendant_prob = descendant;
  return generate_xpaths(news_dtd(), options);
}

std::vector<Path> bench_paths(std::size_t docs) {
  Rng rng(7);
  std::vector<Path> out;
  for (std::size_t d = 0; d < docs; ++d) {
    for (Path& p : extract_paths(generate_document(news_dtd(), rng, {}))) {
      out.push_back(std::move(p));
    }
  }
  return out;
}

// ---- window search: KMP vs naive ----------------------------------------

void BM_RelMatch(benchmark::State& state, SearchStrategy strategy) {
  // Wildcard-free queries and advertisements: the KMP-eligible case.
  auto queries = bench_xpes(400, 0.0, 0.0);
  for (Xpe& q : queries) q = Xpe::relative(q.steps());  // force relative
  auto derived = derive_advertisements(news_dtd());
  std::vector<std::vector<std::string>> advs;
  for (const auto& a : derived.advertisements) {
    if (a.non_recursive()) advs.push_back(a.flat_elements());
    if (advs.size() == 200) break;
  }
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const Xpe& q : queries) {
      for (const auto& adv : advs) {
        hits += rel_expr_and_adv(adv, q, strategy);
      }
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size() * advs.size()));
}
BENCHMARK_CAPTURE(BM_RelMatch, naive, SearchStrategy::kNaive);
BENCHMARK_CAPTURE(BM_RelMatch, kmp, SearchStrategy::kKmpWhenSound);

// ---- publication matching: covering tree vs flat scan -------------------

void BM_PubMatch(benchmark::State& state, bool covering) {
  CoverSetOptions copts;
  copts.count = static_cast<std::size_t>(state.range(0));
  copts.target_rate = 0.9;
  copts.seed = 11;
  CoverSet set = build_covering_set(news_dtd(), copts);
  Prt prt(covering);
  Rng rng(3);
  for (const Xpe& x : set.xpes) prt.insert(x, IfaceId{rng.uniform_int(0, 3)});
  auto pubs = bench_paths(10);
  for (auto _ : state) {
    std::size_t hops = 0;
    for (const Path& p : pubs) hops += prt.match_hops(p).size();
    benchmark::DoNotOptimize(hops);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pubs.size()));
}
BENCHMARK_CAPTURE(BM_PubMatch, flat, false)->Arg(1000)->Arg(2000);
BENCHMARK_CAPTURE(BM_PubMatch, covering_tree, true)->Arg(1000)->Arg(2000);

// ---- recursive advertisement matching: Fig. 3 vs automaton --------------

void BM_RecAdv(benchmark::State& state, bool automaton) {
  std::vector<std::string> a1{"news", "body", "body.content"};
  std::vector<std::string> a2{"block"};
  std::vector<std::string> a3{"p", "em"};
  Advertisement adv = parse_advertisement("/news/body/body.content(/block)+/p/em");
  AdvAutomaton compiled(adv);
  auto queries = bench_xpes(500, 0.2, 0.0);
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const Xpe& q : queries) {
      if (!q.is_absolute_simple()) continue;
      hits += automaton ? compiled.overlaps(q)
                        : abs_expr_and_sim_rec_adv(a1, a2, a3, q);
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK_CAPTURE(BM_RecAdv, fig3_literal, false);
BENCHMARK_CAPTURE(BM_RecAdv, automaton, true);

// ---- tree insertion: covered-tracking on/off -----------------------------

void BM_TreeInsert(benchmark::State& state, bool track_covered) {
  auto queries = bench_xpes(static_cast<std::size_t>(state.range(0)), 0.2, 0.2);
  for (auto _ : state) {
    SubscriptionTree::Options options;
    options.track_covered = track_covered;
    SubscriptionTree tree(options);
    for (const Xpe& q : queries) tree.insert(q, IfaceId{0});
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK_CAPTURE(BM_TreeInsert, tracked, true)->Arg(1000);
BENCHMARK_CAPTURE(BM_TreeInsert, untracked, false)->Arg(1000);

// ---- covering detection dispatch cost ------------------------------------

void BM_Covers(benchmark::State& state) {
  auto queries = bench_xpes(300, 0.2, 0.2);
  for (auto _ : state) {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      hits += covers(queries[i], queries[(i * 7 + 1) % queries.size()]);
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_Covers);

}  // namespace

BENCHMARK_MAIN();
