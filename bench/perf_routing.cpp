// Broker hot-path throughput: indexed + interned matching vs the retained
// linear-scan reference implementations.
//
// Measures the two routing-table operations every message crosses:
//
//   subscription forward — Srt::hops_overlapping (symbol index + interned
//       overlap) vs Srt::hops_overlapping_scan (pre-PR linear scan with
//       string element comparisons);
//   publication match    — flat Prt::match_hops at --subs subscriptions
//       (deepest-symbol index + interned matcher) vs Prt::match_hops_scan
//       (pre-PR linear scan), plus the covering tree's root index as an
//       informative extra.
//
// Every indexed result is verified equal to the reference before timing;
// the run aborts if any differs. The run also replays the pinned
// clean-network golden scenario (net/golden.hpp) and fails if the totals
// moved — the observability layer's zero-overhead contract — and embeds
// that run's full metrics snapshot. Results land in BENCH_routing.json
// (see DESIGN.md "Performance architecture" for how to read it).
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <set>
#include <vector>

#include "adv/derive.hpp"
#include "metrics_snapshot.hpp"
#include "net/golden.hpp"
#include "net/simulator.hpp"
#include "router/routing_tables.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/set_builder.hpp"
#include "workload/xml_gen.hpp"
#include "xml/paths.hpp"

using namespace xroute;

namespace {

using Clock = std::chrono::steady_clock;

/// Runs `body` repeatedly until at least `min_seconds` have elapsed and
/// returns operations per second (ops = `ops_per_rep` * repetitions).
double ops_per_sec(double min_seconds, std::size_t ops_per_rep,
                   const std::function<void()>& body) {
  std::size_t reps = 0;
  auto start = Clock::now();
  double elapsed = 0.0;
  do {
    body();
    ++reps;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(ops_per_rep) * static_cast<double>(reps) /
         elapsed;
}

struct Metric {
  std::size_t table_entries = 0;
  std::size_t queries = 0;
  double scan_per_sec = 0.0;
  double indexed_per_sec = 0.0;
  std::size_t tests_scan = 0;
  std::size_t tests_indexed = 0;
  double speedup() const {
    return scan_per_sec > 0 ? indexed_per_sec / scan_per_sec : 0.0;
  }
};

void emit(std::ostream& os, const Metric& m) {
  os << "    \"table_entries\": " << m.table_entries << ",\n"
     << "    \"queries\": " << m.queries << ",\n"
     << "    \"baseline_scan_per_sec\": " << m.scan_per_sec << ",\n"
     << "    \"indexed_per_sec\": " << m.indexed_per_sec << ",\n"
     << "    \"speedup\": " << m.speedup() << ",\n"
     << "    \"tests_scan\": " << m.tests_scan << ",\n"
     << "    \"tests_indexed\": " << m.tests_indexed << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("Broker hot-path throughput: indexed vs linear-scan reference");
  flags.define("subs", "10000", "subscription count (PRT size)");
  flags.define("srt-queries", "2000", "subscriptions timed against the SRT");
  flags.define("docs", "40", "generated documents (publication paths)");
  flags.define("dtd", "news", "corpus DTD (news|psd)");
  flags.define("rate", "0.9", "target covering rate of the subscription set");
  flags.define("seed", "1", "workload seed");
  flags.define("hops", "64", "distinct last-hop interfaces");
  flags.define("min-seconds", "0.3", "minimum timed duration per loop");
  flags.define("out", "BENCH_routing.json", "output file");
  if (!flags.parse(argc, argv)) return 0;

  const std::size_t subs = flags.get_int("subs");
  const std::size_t srt_queries = flags.get_int("srt-queries");
  const int hops = static_cast<int>(flags.get_int("hops"));
  const double min_seconds = flags.get_double("min-seconds");
  Dtd dtd = corpus_dtd(flags.get_string("dtd"));

  // ---- Workload -------------------------------------------------------
  CoverSetOptions set_opts;
  set_opts.count = subs;
  set_opts.target_rate = flags.get_double("rate");
  set_opts.seed = flags.get_int64("seed");
  CoverSet set = build_covering_set(dtd, set_opts);
  std::cout << set.xpes.size() << " subscriptions (covering rate "
            << set.constructed_rate << ")\n";

  DerivedAdvertisements derived = derive_advertisements(dtd);
  std::cout << derived.advertisements.size() << " advertisements\n";

  Rng rng(flags.get_int64("seed"));
  std::vector<Path> paths;
  for (int d = 0; d < flags.get_int("docs"); ++d) {
    XmlDocument doc = generate_document(dtd, rng);
    for (Path& p : extract_paths(doc)) paths.push_back(std::move(p));
  }
  std::cout << paths.size() << " publication paths\n";
  if (set.xpes.empty() || derived.advertisements.empty() || paths.empty()) {
    std::cerr << "empty workload\n";
    return 1;
  }

  bool verified = true;

  // ---- Subscription forward (SRT) -------------------------------------
  Metric srt_metric;
  {
    Srt srt;
    for (std::size_t i = 0; i < derived.advertisements.size(); ++i) {
      srt.add(derived.advertisements[i], IfaceId{static_cast<int>(i) % hops});
    }
    std::vector<const Xpe*> queries;
    for (std::size_t i = 0; i < srt_queries; ++i) {
      queries.push_back(&set.xpes[i % set.xpes.size()]);
    }
    srt_metric.table_entries = srt.size();
    srt_metric.queries = queries.size();

    // Verification pass (also warms the lazy advertisement automatons so
    // neither timed loop pays compilation).
    for (const Xpe* q : queries) {
      if (srt.hops_overlapping(*q) != srt.hops_overlapping_scan(*q)) {
        std::cerr << "MISMATCH: hops_overlapping(" << q->to_string() << ")\n";
        verified = false;
      }
    }

    std::size_t before = srt.comparisons();
    srt_metric.scan_per_sec = ops_per_sec(min_seconds, queries.size(), [&] {
      for (const Xpe* q : queries) srt.hops_overlapping_scan(*q);
    });
    std::size_t mid = srt.comparisons();
    srt_metric.indexed_per_sec = ops_per_sec(min_seconds, queries.size(), [&] {
      for (const Xpe* q : queries) srt.hops_overlapping(*q);
    });
    std::size_t after = srt.comparisons();
    srt_metric.tests_scan = mid - before;
    srt_metric.tests_indexed = after - mid;
    std::cout << "SRT forward: scan " << srt_metric.scan_per_sec
              << " subs/s, indexed " << srt_metric.indexed_per_sec
              << " subs/s (" << srt_metric.speedup() << "x)\n";
  }

  // ---- Publication match (flat PRT, the no-covering baseline) ---------
  Metric prt_metric;
  {
    Prt prt(/*covering=*/false);
    for (std::size_t i = 0; i < set.xpes.size(); ++i) {
      prt.insert(set.xpes[i], IfaceId{static_cast<int>(i) % hops});
    }
    prt_metric.table_entries = prt.size();
    prt_metric.queries = paths.size();

    for (const Path& p : paths) {
      if (prt.match_hops(p) != prt.match_hops_scan(p)) {
        std::cerr << "MISMATCH: match_hops(" << p.to_string() << ")\n";
        verified = false;
      }
    }

    std::size_t before = prt.comparisons();
    prt_metric.scan_per_sec = ops_per_sec(min_seconds, paths.size(), [&] {
      for (const Path& p : paths) prt.match_hops_scan(p);
    });
    std::size_t mid = prt.comparisons();
    prt_metric.indexed_per_sec = ops_per_sec(min_seconds, paths.size(), [&] {
      for (const Path& p : paths) prt.match_hops(p);
    });
    std::size_t after = prt.comparisons();
    prt_metric.tests_scan = mid - before;
    prt_metric.tests_indexed = after - mid;
    std::cout << "PRT match: scan " << prt_metric.scan_per_sec
              << " pubs/s, indexed " << prt_metric.indexed_per_sec
              << " pubs/s (" << prt_metric.speedup() << "x)\n";
  }

  // ---- Covering-tree match (informative) ------------------------------
  Metric tree_metric;
  {
    Prt prt(/*covering=*/true, /*track_covered=*/false);
    for (std::size_t i = 0; i < set.xpes.size(); ++i) {
      prt.insert(set.xpes[i], IfaceId{static_cast<int>(i) % hops});
    }
    tree_metric.table_entries = prt.size();
    tree_metric.queries = paths.size();
    for (const Path& p : paths) {
      if (prt.match_hops(p) != prt.match_hops_scan(p)) {
        std::cerr << "MISMATCH: tree match_hops(" << p.to_string() << ")\n";
        verified = false;
      }
    }
    std::size_t before = prt.comparisons();
    tree_metric.scan_per_sec = ops_per_sec(min_seconds, paths.size(), [&] {
      for (const Path& p : paths) prt.match_hops_scan(p);
    });
    std::size_t mid = prt.comparisons();
    tree_metric.indexed_per_sec = ops_per_sec(min_seconds, paths.size(), [&] {
      for (const Path& p : paths) prt.match_hops(p);
    });
    tree_metric.tests_scan = mid - before;
    tree_metric.tests_indexed = prt.comparisons() - mid;
    std::cout << "Tree match: scan " << tree_metric.scan_per_sec
              << " pubs/s, indexed " << tree_metric.indexed_per_sec
              << " pubs/s (" << tree_metric.speedup() << "x)\n";
  }

  // ---- Clean-network golden (zero-overhead contract) ------------------
  // Same assertion tests/obs_test.cpp makes: replaying the pinned golden
  // scenario must reproduce the pre-observability totals exactly. A
  // metrics or tracing hook that moves a single message or byte fails the
  // bench the same way a routing mismatch does.
  Simulator golden_sim(Simulator::Options{0.0});
  const bool golden_ok = run_golden_scenario(golden_sim) == golden_expected();
  if (!golden_ok) {
    std::cerr << "GOLDEN MISMATCH: clean-network totals moved "
                 "(observability overhead?)\n";
    verified = false;
  }
  std::cout << "golden network: "
            << (golden_ok ? "totals identical" : "TOTALS MOVED") << "\n";

  std::ofstream out(flags.get_string("out"));
  out << "{\n"
      << "  \"bench\": \"perf_routing\",\n"
      << "  \"config\": {\n"
      << "    \"dtd\": \"" << flags.get_string("dtd") << "\",\n"
      << "    \"subscriptions\": " << set.xpes.size() << ",\n"
      << "    \"advertisements\": " << derived.advertisements.size() << ",\n"
      << "    \"publication_paths\": " << paths.size() << ",\n"
      << "    \"hops\": " << hops << ",\n"
      << "    \"seed\": " << flags.get_int64("seed") << "\n"
      << "  },\n"
      << "  \"subscription_forward\": {\n";
  emit(out, srt_metric);
  out << "  },\n"
      << "  \"publication_match\": {\n";
  emit(out, prt_metric);
  out << "  },\n"
      << "  \"covering_tree_match\": {\n";
  emit(out, tree_metric);
  out << "  },\n"
      << "  \"golden_network\": " << (golden_ok ? "true" : "false") << ",\n";
  emit_metrics_snapshot(out, golden_sim.stats().registry(), "metrics");
  out << ",\n"
      << "  \"verified_identical\": " << (verified ? "true" : "false") << "\n"
      << "}\n";
  std::cout << (verified ? "results verified identical\n"
                         : "VERIFICATION FAILED\n")
            << "wrote " << flags.get_string("out") << "\n";
  return verified ? 0 : 1;
}
