// Control-plane churn bench (PR 8 acceptance: the quiesce barrier is
// gone).
//
// One broker, 10k subscriptions, publications in handle_batch batches —
// and a stream of subscribe/unsubscribe control ops riding in the same
// batches, so every op lands in the pipelined control window while a
// match epoch is in flight. Three sweep points target churn rates of
// 0, 1k and 10k control ops/sec; the acceptance criterion is that the
// publication match cost at 10k ops/s stays within 10% of the
// zero-churn baseline.
//
// On a core-starved box (this container is 1-core) wall-clock pubs/sec
// at high churn measures time-slicing, not the engine, so the
// churn-independence figure is the epoch critical path in CPU time
// (control-thread ns/pub + workers' match CPU split per thread) — the
// same churn_match_basis logic BENCH_parallel.json uses for speedups.
// A separate phase times the control plane alone (ops/sec for a
// subscribe/unsubscribe round-trip including the RCU snapshot rebuild),
// and the snapshot builder's structural-sharing counters land in the
// JSON so a regression to full recompiles is visible as a rebuilt/shared
// ratio shift.
//
// The previous BENCH_churn.json (one level deep) is embedded under
// "previous" so a fresh run preserves the before/after pair.
#include <time.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "dtd/universe.hpp"
#include "router/broker.hpp"
#include "router/match_scheduler.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/set_builder.hpp"

using namespace xroute;

namespace {

using Clock = std::chrono::steady_clock;

struct DiscardSink : ForwardSink {
  void on_forward(IfaceId, const Message&) override {}
};

std::uint64_t thread_cpu_ns() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

constexpr int kPublisherIface = 0;
constexpr int kChurnIface = 999;

std::unique_ptr<Broker> make_broker(std::size_t threads, const CoverSet& set,
                                    int hops) {
  Broker::Config config;
  config.use_advertisements = false;
  // The churn-optimised control plane: track_covered's whole-tree sweep
  // per insert is the upstream-unsubscription optimisation, not a
  // delivery requirement (subscription_tree.hpp), and at sustained
  // churn its O(tree) covers() scan dominates op cost and thrashes the
  // workers' cache. Off, an op touches only the descent path.
  config.track_covered = false;
  config.match_threads = threads;
  auto broker = std::make_unique<Broker>(0, config);
  for (int h = 0; h <= hops; ++h) broker->add_neighbor(IfaceId{h});
  broker->add_neighbor(IfaceId{kChurnIface});
  for (std::size_t i = 0; i < set.xpes.size(); ++i) {
    broker->restore_subscription(
        set.xpes[i], IfaceSet{IfaceId{1 + static_cast<int>(i) % hops}});
  }
  return broker;
}

struct ChurnPoint {
  double target_ops_per_sec = 0.0;
  double achieved_ops_per_sec = 0.0;
  double ops_per_batch = 0.0;
  double pubs_per_sec = 0.0;
  double ctl_cpu_ns_per_pub = 0.0;
  double critical_path_ns_per_pub = 0.0;
  double critical_path_ns_per_pub_median = 0.0;
  double critical_path_ns_per_pub_min = 0.0;
  std::uint64_t snapshot_builds = 0;
  std::uint64_t buckets_rebuilt = 0;
  std::uint64_t buckets_shared = 0;
  std::uint64_t buckets_unchanged = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags("Control-plane churn sweep (pub matching under live churn)");
  flags.define("subs", "10000", "subscription count (PRT size)");
  flags.define("pubs", "512", "publication paths per timed pass");
  flags.define("batch", "256", "publications per handle_batch call");
  flags.define("hops", "64", "distinct last-hop interfaces");
  flags.define("threads", "2", "match workers during the sweep");
  flags.define("seed", "1", "workload seed");
  flags.define("rate", "0.9", "target covering rate of the subscription set");
  flags.define("min-seconds", "1.0", "minimum timed duration per point");
  flags.define("out", "BENCH_churn.json", "output file");
  if (!flags.parse(argc, argv)) return 0;

  const int hops = static_cast<int>(flags.get_int("hops"));
  const std::size_t batch = flags.get_int("batch");
  const std::size_t threads = flags.get_int("threads");
  const double min_seconds = flags.get_double("min-seconds");
  const unsigned cores = std::thread::hardware_concurrency();

  Dtd dtd = corpus_dtd("news");
  CoverSetOptions set_opts;
  set_opts.count = flags.get_int("subs");
  set_opts.target_rate = flags.get_double("rate");
  set_opts.seed = flags.get_int64("seed");
  CoverSet set = build_covering_set(dtd, set_opts);

  // The churn stream uses its own XPE pool (disjoint seed) at its own
  // interface: each op pair subscribes then unsubscribes, so the table
  // returns to the baseline state after every pair and the match cost
  // differences are churn overhead, not table growth.
  CoverSetOptions churn_opts;
  churn_opts.count = 512;
  churn_opts.target_rate = 0.5;
  churn_opts.seed = flags.get_int64("seed") + 101;
  CoverSet churn_set = build_covering_set(dtd, churn_opts);

  Rng rng(flags.get_int64("seed"));
  PathUniverse universe(dtd);
  const std::size_t pubs = flags.get_int("pubs");
  std::vector<Path> paths;
  for (std::size_t i = 0; i < pubs; ++i) {
    paths.push_back(rng.pick(universe.paths()));
  }
  if (set.xpes.empty() || churn_set.xpes.empty() || paths.empty()) {
    std::cerr << "empty workload\n";
    return 1;
  }
  std::cout << set.xpes.size() << " subscriptions, "
            << churn_set.xpes.size() << " churn XPEs, " << cores
            << " core(s)\n";

  // ---- Determinism under churn: forwards identical across threads -----
  // Per-message replay of pubs with control ops interleaved every 16th
  // message; the multi-threaded broker must forward byte-for-byte like
  // the sequential one even though every op republishes the snapshot.
  bool verified = true;
  {
    std::vector<std::vector<Broker::Forward>> reference;
    for (std::size_t t : {std::size_t{1}, threads}) {
      std::unique_ptr<Broker> broker = make_broker(t, set, hops);
      std::vector<std::vector<Broker::Forward>> forwards;
      std::uint64_t doc_id = 1;
      std::size_t churn_cursor = 0;
      for (std::size_t i = 0; i < paths.size(); ++i) {
        if (i % 16 == 8) {
          const Xpe& xpe =
              churn_set.xpes[churn_cursor++ % churn_set.xpes.size()];
          broker->handle(IfaceId{kChurnIface}, Message::subscribe(xpe));
          broker->handle(IfaceId{kChurnIface}, Message::unsubscribe(xpe));
        }
        PublishMsg msg;
        msg.path = paths[i];
        msg.doc_id = doc_id++;
        forwards.push_back(
            broker->handle(IfaceId{kPublisherIface}, Message{msg}).forwards);
      }
      if (t == 1) {
        reference = std::move(forwards);
        continue;
      }
      for (std::size_t i = 0; i < paths.size(); ++i) {
        bool same = forwards[i].size() == reference[i].size();
        for (std::size_t f = 0; same && f < forwards[i].size(); ++f) {
          same = forwards[i][f].interface == reference[i][f].interface;
        }
        if (!same) {
          std::cerr << "MISMATCH at publication " << i << " ("
                    << paths[i].to_string() << ")\n";
          verified = false;
        }
      }
    }
  }

  // ---- Control plane alone: ops/sec for a sub/unsub round-trip --------
  double control_ops_per_sec = 0.0;
  std::uint64_t control_builds = 0;
  {
    std::unique_ptr<Broker> broker = make_broker(threads, set, hops);
    DiscardSink sink;
    const std::uint64_t builds_before = broker->snapshot_builder().builds();
    std::size_t ops = 0;
    std::size_t cursor = 0;
    auto start = Clock::now();
    double elapsed = 0.0;
    do {
      const Xpe& xpe = churn_set.xpes[cursor++ % churn_set.xpes.size()];
      broker->handle(IfaceId{kChurnIface}, Message::subscribe(xpe), sink);
      broker->handle(IfaceId{kChurnIface}, Message::unsubscribe(xpe), sink);
      ops += 2;
      elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    } while (elapsed < min_seconds);
    control_ops_per_sec = static_cast<double>(ops) / elapsed;
    control_builds = broker->snapshot_builder().builds() - builds_before;
    std::cout << "control plane: " << control_ops_per_sec
              << " ops/s (each op publishing a snapshot; " << control_builds
              << " builds)\n";
  }

  // ---- Churn sweep: pub matching at 0 / 1k / 10k control ops/sec ------
  //
  // Paired, interleaved measurement: all three points keep their brokers
  // alive simultaneously and the timing loop rotates one rep per point,
  // so drifts in available CPU (this is typically a shared container)
  // hit every point equally and sample counts stay equal; the criterion
  // compares per-point medians of the probe samples.
  //
  // Each rep is a carrier pass and a probe pass over the paths. The
  // carrier drives the churn rate: its batches lead with the publication
  // run and trail with the control ops, which execute in the pipelined
  // window while the match epoch is in flight. The probe replays the
  // same publications with the control stream silent and is what the
  // criterion reads: the match cost against the freshly churned
  // snapshot. (Measuring the carrier epochs instead would, on a
  // core-starved box, mostly price the context switches the
  // concurrently-runnable control thread induces mid-epoch — scheduler
  // interference, not engine cost; on a multi-core box the two run on
  // separate cores.)
  const double kTargets[] = {0.0, 1000.0, 10000.0};

  std::vector<Message> messages;
  for (const Path& path : paths) {
    PublishMsg msg;
    msg.path = path;
    messages.emplace_back(msg);
  }
  std::vector<Message> control;
  std::vector<Broker::Inbound> inbound;
  DiscardSink sink;
  std::uint64_t doc_id = 1000000;
  auto restamp = [&] {
    for (Message& m : messages) {
      std::get<PublishMsg>(m.payload).doc_id = doc_id++;
    }
  };
  auto push_pubs = [&](std::size_t begin, std::size_t end) {
    inbound.clear();
    for (std::size_t i = begin; i < end; ++i) {
      inbound.push_back(
          Broker::Inbound{IfaceId{kPublisherIface}, &messages[i]});
    }
  };

  struct PointState {
    double target = 0.0;
    std::unique_ptr<Broker> broker;
    double ops_per_batch = 0.0;
    double ops_accumulated = 0.0;
    std::size_t churn_cursor = 0;
    std::size_t total_ops = 0;
    std::size_t reps = 0;
    double wall_seconds = 0.0;
    double cpu_ns = 0.0;
    std::vector<double> probe_ns_per_pub;
    std::uint64_t crit_before = 0;
    std::uint64_t builds_before = 0;
    std::uint64_t rebuilt_before = 0;
    std::uint64_t shared_before = 0;
    std::uint64_t unchanged_before = 0;
  };
  std::vector<PointState> points;
  for (double target : kTargets) {
    PointState p;
    p.target = target;
    p.broker = make_broker(threads, set, hops);
    points.push_back(std::move(p));
  }

  // Calibration: zero-churn throughput on the baseline broker, used to
  // size control ops per batch so the achieved rate lands near the
  // target (the JSON records both). Also warms every point's broker.
  double baseline_pps = 0.0;
  {
    std::size_t calib_reps = 0;
    auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (PointState& p : points) {
        restamp();
        for (std::size_t begin = 0; begin < messages.size(); begin += batch) {
          push_pubs(begin, std::min(begin + batch, messages.size()));
          p.broker->handle_batch(inbound, sink);
        }
      }
      ++calib_reps;
      elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    } while (elapsed < std::max(0.1, min_seconds / 8.0));
    baseline_pps = static_cast<double>(calib_reps * points.size() *
                                       paths.size()) /
                   elapsed;
  }
  for (PointState& p : points) {
    if (p.target > 0.0 && baseline_pps > 0.0) {
      p.ops_per_batch = p.target * static_cast<double>(batch) / baseline_pps;
    }
    const SnapshotBuilder& builder = p.broker->snapshot_builder();
    if (const MatchScheduler* scheduler = p.broker->scheduler()) {
      p.crit_before = scheduler->critical_path_ns();
    }
    p.builds_before = builder.builds();
    p.rebuilt_before = builder.buckets_rebuilt();
    p.shared_before = builder.buckets_shared();
    p.unchanged_before = builder.buckets_unchanged();
  }

  // A rep is one carrier pass plus kProbePasses probe passes, so its
  // pub:op mix equals the target rate's real traffic mix (at 10k ops/s
  // against ~500k pubs/s there are ~50 publications per control op —
  // probing only the single batch after the window would measure a 4x
  // higher effective rate, over-weighting the one-off post-window cache
  // transient).
  constexpr std::size_t kProbePasses = 3;
  auto run_rep = [&](PointState& p) {
    const MatchScheduler* scheduler = p.broker->scheduler();
    const std::uint64_t cpu0 = thread_cpu_ns();
    auto rep_start = Clock::now();
    // Carrier pass. Rate accounting spans the whole rep (carrier +
    // probe pubs); ops are always emitted as complete sub/unsub pairs
    // inside one window — a fractional rate accumulates across batches
    // — so the table nets out to the baseline state after every window
    // and the match-cost delta is churn overhead, never table growth.
    restamp();
    for (std::size_t begin = 0; begin < messages.size(); begin += batch) {
      push_pubs(begin, std::min(begin + batch, messages.size()));
      p.ops_accumulated += (1.0 + kProbePasses) * p.ops_per_batch;
      const std::size_t pairs =
          static_cast<std::size_t>(p.ops_accumulated / 2.0);
      p.ops_accumulated -= static_cast<double>(pairs) * 2.0;
      control.clear();
      for (std::size_t j = 0; j < pairs * 2; ++j) {
        const Xpe& xpe =
            churn_set.xpes[(p.churn_cursor + j / 2) % churn_set.xpes.size()];
        control.push_back(j % 2 == 0 ? Message::subscribe(xpe)
                                     : Message::unsubscribe(xpe));
      }
      p.churn_cursor += pairs;
      for (Message& m : control) {
        inbound.push_back(Broker::Inbound{IfaceId{kChurnIface}, &m});
      }
      p.broker->handle_batch(inbound, sink);
      p.total_ops += pairs * 2;
    }
    // Probe passes — the measured sample.
    const std::uint64_t probe_crit_before =
        scheduler ? scheduler->critical_path_ns() : 0;
    for (std::size_t pass = 0; pass < kProbePasses; ++pass) {
      restamp();
      for (std::size_t begin = 0; begin < messages.size(); begin += batch) {
        push_pubs(begin, std::min(begin + batch, messages.size()));
        p.broker->handle_batch(inbound, sink);
      }
    }
    if (scheduler) {
      p.probe_ns_per_pub.push_back(
          static_cast<double>(scheduler->critical_path_ns() -
                              probe_crit_before) /
          static_cast<double>(kProbePasses * paths.size()));
    }
    ++p.reps;
    p.wall_seconds +=
        std::chrono::duration<double>(Clock::now() - rep_start).count();
    p.cpu_ns += static_cast<double>(thread_cpu_ns() - cpu0);
  };

  {
    auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (PointState& p : points) run_rep(p);
      elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    } while (elapsed < min_seconds);
  }

  auto median = [](std::vector<double> v) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const std::size_t mid = v.size() / 2;
    return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
  };

  std::vector<ChurnPoint> sweep;
  for (PointState& p : points) {
    const double total_pubs =
        static_cast<double>((1 + kProbePasses) * p.reps * paths.size());
    ChurnPoint point;
    point.target_ops_per_sec = p.target;
    point.ops_per_batch = p.ops_per_batch;
    point.achieved_ops_per_sec =
        p.wall_seconds > 0.0 ? static_cast<double>(p.total_ops) / p.wall_seconds
                             : 0.0;
    point.pubs_per_sec =
        p.wall_seconds > 0.0 ? total_pubs / p.wall_seconds : 0.0;
    point.ctl_cpu_ns_per_pub = p.cpu_ns / total_pubs;
    if (const MatchScheduler* scheduler = p.broker->scheduler()) {
      point.critical_path_ns_per_pub =
          static_cast<double>(scheduler->critical_path_ns() - p.crit_before) /
          total_pubs;
    }
    point.critical_path_ns_per_pub_median = median(p.probe_ns_per_pub);
    point.critical_path_ns_per_pub_min =
        p.probe_ns_per_pub.empty()
            ? 0.0
            : *std::min_element(p.probe_ns_per_pub.begin(),
                                p.probe_ns_per_pub.end());
    const SnapshotBuilder& builder = p.broker->snapshot_builder();
    point.snapshot_builds = builder.builds() - p.builds_before;
    point.buckets_rebuilt = builder.buckets_rebuilt() - p.rebuilt_before;
    point.buckets_shared = builder.buckets_shared() - p.shared_before;
    point.buckets_unchanged = builder.buckets_unchanged() - p.unchanged_before;
    std::cout << "churn " << p.target << " ops/s target (achieved "
              << point.achieved_ops_per_sec << " over " << p.reps
              << " reps): " << point.pubs_per_sec << " pubs/s wall, probe "
              << point.critical_path_ns_per_pub_median << " ns/pub median ("
              << point.critical_path_ns_per_pub_min << " min), "
              << point.snapshot_builds << " snapshot builds, "
              << point.buckets_rebuilt << " rebuilt / "
              << point.buckets_unchanged << " unchanged\n";
    sweep.push_back(point);
  }

  // ---- Acceptance: match cost at 10k ops/s vs zero churn --------------
  // The probe epochs' critical path is the basis (see the sweep loop):
  // worker CPU per pub against the freshly churned snapshot, median
  // over paired interleaved reps — churn-rate-independent by
  // construction if and only if the snapshot machinery actually keeps
  // matching cost flat.
  const double base_ns = sweep.front().critical_path_ns_per_pub_median;
  const double at_10k_ns = sweep.back().critical_path_ns_per_pub_median;
  const double ratio = base_ns > 0.0 ? at_10k_ns / base_ns : 1.0;
  std::cout << "match ns/pub at 10k ops/s vs zero churn: " << ratio
            << "x (criterion: <= 1.10)\n";

  // ---- Previous-run preservation --------------------------------------
  std::string previous;
  {
    std::ifstream in(flags.get_string("out"));
    if (in) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      previous = buffer.str();
      // Keep the embedding one level deep: strip the old run's own
      // "previous" (and its closing brace) before nesting it.
      std::size_t pos = previous.find(",\n  \"previous\":");
      if (pos != std::string::npos) {
        previous = previous.substr(0, pos) + "\n}\n";
      }
      while (!previous.empty() &&
             (previous.back() == '\n' || previous.back() == ' ')) {
        previous.pop_back();
      }
    }
  }

  std::ofstream out(flags.get_string("out"));
  out << "{\n"
      << "  \"bench\": \"churn\",\n"
      << "  \"config\": {\n"
      << "    \"subscriptions\": " << set.xpes.size() << ",\n"
      << "    \"churn_xpes\": " << churn_set.xpes.size() << ",\n"
      << "    \"publication_paths\": " << paths.size() << ",\n"
      << "    \"batch\": " << batch << ",\n"
      << "    \"threads\": " << threads << ",\n"
      << "    \"hops\": " << hops << ",\n"
      << "    \"seed\": " << flags.get_int64("seed") << ",\n"
      << "    \"cores\": " << cores << "\n"
      << "  },\n"
      << "  \"control_plane\": {\n"
      << "    \"ops_per_sec\": " << control_ops_per_sec << ",\n"
      << "    \"snapshot_builds\": " << control_builds << "\n"
      << "  },\n"
      << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const ChurnPoint& p = sweep[i];
    out << "    {\"target_ops_per_sec\": " << p.target_ops_per_sec
        << ", \"achieved_ops_per_sec\": " << p.achieved_ops_per_sec
        << ", \"ops_per_batch\": " << p.ops_per_batch
        << ", \"pubs_per_sec\": " << p.pubs_per_sec
        << ", \"ctl_cpu_ns_per_pub\": " << p.ctl_cpu_ns_per_pub
        << ", \"critical_path_ns_per_pub\": " << p.critical_path_ns_per_pub
        << ", \"critical_path_ns_per_pub_median\": "
        << p.critical_path_ns_per_pub_median
        << ", \"critical_path_ns_per_pub_min\": "
        << p.critical_path_ns_per_pub_min
        << ", \"snapshot_builds\": " << p.snapshot_builds
        << ", \"buckets_rebuilt\": " << p.buckets_rebuilt
        << ", \"buckets_shared\": " << p.buckets_shared
        << ", \"buckets_unchanged\": " << p.buckets_unchanged << "}"
        << (i + 1 < sweep.size() ? ",\n" : "\n");
  }
  out << "  ],\n"
      << "  \"match_ns_basis\": \"critical_path_probe_median_paired\",\n"
      << "  \"match_cost_ratio_at_10k\": " << ratio << ",\n"
      << "  \"verified_identical\": " << (verified ? "true" : "false");
  if (!previous.empty()) {
    out << ",\n  \"previous\": " << previous;
  }
  out << "\n}\n";
  std::cout << (verified ? "results verified identical\n"
                         : "VERIFICATION FAILED\n")
            << "wrote " << flags.get_string("out") << "\n";
  return verified && ratio <= 1.10 ? 0 : 1;
}
