// Shared driver for the notification-delay-vs-hops experiments
// (Figs. 10 and 11).
//
// Reproduces the paper's PlanetLab setting: a broker chain with maximum
// end-to-end distance 7 hops; subscribers at increasing distances from the
// publisher; documents of several sizes. Per-hop processing time is the
// *measured* wall-clock of the real matching code, so the with/without-
// covering gap comes from genuine routing-table size differences; link
// latencies follow the PlanetLab profile.
#pragma once

#include <iostream>
#include <map>
#include <vector>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "util/flags.hpp"
#include "workload/xml_gen.hpp"
#include "workload/xpath_gen.hpp"
#include "xpath/parser.hpp"

namespace xroute::benchsupport {

struct DelayPoint {
  std::size_t hops;
  double mean_delay_ms;
};

/// Runs one (document size, covering on/off) configuration and returns the
/// mean notification delay per hop distance.
inline std::vector<DelayPoint> run_delay_sweep(
    const Dtd& dtd, std::size_t doc_bytes, bool covering,
    std::size_t subs_per_subscriber, std::size_t docs, std::size_t max_hops,
    std::uint64_t seed) {
  Network::Options options;
  options.topology = chain(max_hops + 1);
  options.profile = LatencyProfile::kPlanetLab;
  options.strategy = covering ? RoutingStrategy::with_adv_with_cov()
                              : RoutingStrategy::with_adv_no_cov();
  options.dtd = dtd;
  options.seed = seed;
  options.processing_scale = 1.0;  // real matching time shapes the curve
  Network net(std::move(options));

  int publisher = net.add_publisher(0);
  net.run();

  // One subscriber per hop distance; each carries a base of generated
  // XPEs (sized to make routing tables matter) plus a broad catch-all so
  // every document is delivered and measured.
  XpathGenOptions xopts;
  xopts.count = subs_per_subscriber * max_hops;
  xopts.seed = seed + 1;
  xopts.wildcard_prob = 0.25;
  xopts.descendant_prob = 0.25;
  std::vector<Xpe> base = generate_xpaths(dtd, xopts);

  std::map<std::size_t, int> subscriber_at;
  std::size_t cursor = 0;
  for (std::size_t h = 2; h <= max_hops; ++h) {
    int sub = net.add_subscriber(static_cast<int>(h));
    subscriber_at[h] = sub;
    Xpe catch_all = Xpe::absolute({Step{Axis::kChild, dtd.root()}});
    net.subscribe(sub, catch_all);
    for (std::size_t q = 0; q < subs_per_subscriber && cursor < base.size();
         ++q) {
      net.subscribe(sub, base[cursor++]);
    }
  }
  net.run();

  Rng rng(seed + 2);
  XmlGenOptions gen;
  gen.target_bytes = doc_bytes;
  for (std::size_t d = 0; d < docs; ++d) {
    net.publish(publisher, generate_document(dtd, rng, gen));
  }
  net.run();

  std::vector<DelayPoint> points;
  for (std::size_t h = 2; h <= max_hops; ++h) {
    const auto& delays = net.simulator().delays_of(subscriber_at[h]);
    double sum = 0;
    for (double d : delays) sum += d;
    points.push_back(DelayPoint{
        h, delays.empty() ? 0.0 : sum / static_cast<double>(delays.size())});
  }
  return points;
}

/// Full figure: sizes x {with covering, without covering} against hops.
inline int delay_figure_main(const char* figure, const Dtd& dtd,
                             const std::vector<std::size_t>& sizes, int argc,
                             char** argv) {
  Flags flags(std::string(figure) +
              ": notification delay vs broker hops (PlanetLab profile)");
  flags.define("subs-per-subscriber", "250", "XPEs per subscriber");
  flags.define("docs", "15", "documents per configuration");
  flags.define("max-hops", "6", "maximum hop distance (paper: 2..6)");
  flags.define("seed", "10", "workload seed");
  if (!flags.parse(argc, argv)) return 0;

  const std::size_t subs = flags.get_int("subs-per-subscriber");
  const std::size_t docs = flags.get_int("docs");
  const std::size_t max_hops = flags.get_int("max-hops");

  std::cout << figure << " reproduction: notification delay vs hops ("
            << docs << " documents per point, " << subs
            << " XPEs per subscriber)\n\n";

  std::vector<std::string> headers{"hops"};
  for (std::size_t size : sizes) {
    headers.push_back(std::to_string(size / 1024) + "K with cov");
    headers.push_back(std::to_string(size / 1024) + "K without cov");
  }
  TextTable table(std::move(headers));

  std::map<std::size_t, std::vector<double>> rows;
  for (std::size_t size : sizes) {
    auto with_cov = run_delay_sweep(dtd, size, true, subs, docs, max_hops,
                                    flags.get_int64("seed"));
    auto without_cov = run_delay_sweep(dtd, size, false, subs, docs, max_hops,
                                       flags.get_int64("seed"));
    for (std::size_t i = 0; i < with_cov.size(); ++i) {
      rows[with_cov[i].hops].push_back(with_cov[i].mean_delay_ms);
      rows[without_cov[i].hops].push_back(without_cov[i].mean_delay_ms);
    }
  }
  for (const auto& [hops, delays] : rows) {
    std::vector<std::string> cells{std::to_string(hops)};
    for (double d : delays) cells.push_back(TextTable::fmt(d));
    table.add_row(std::move(cells));
  }
  table.print(std::cout);
  std::cout << "\npaper shape: delay is linear in hops; covering flattens\n"
            << "the slope (smaller per-hop routing tables), and larger\n"
            << "documents both lengthen the delay and gain more from\n"
            << "covering.\n";
  return 0;
}

}  // namespace xroute::benchsupport
