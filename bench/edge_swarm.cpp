// Edge swarm bench: 10,000+ leased clients against one broker's edge
// session layer (DESIGN.md "Edge session layer"). Writes BENCH_edge.json.
//
// What it proves:
//   * concurrency — `clients` simultaneous leased sessions (connect and
//     subscribe->lease-grant latency percentiles for the ramp),
//   * serialize-once — encodes_per_fanout == 1: every publication the
//     broker matches materialises exactly ONE frame at the edge no
//     matter how many thousands of sessions receive it,
//   * delivery — the swarm's received-publication count equals the
//     oracle's expectation (interest assignment is deterministic, so the
//     parent can compute exactly how many deliveries the run owes) with
//     zero duplicates, and notify p50/p95/p99 from the publisher's
//     steady-clock stamp to client arrival.
//
// Process shape: the box caps a process at 20k fds and every simulated
// client costs two (its socket plus the edge's session socket), so the
// bench forks BEFORE any thread exists: the parent runs broker + edge
// server + publisher, the child runs the EdgeSwarm. CLOCK_MONOTONIC is
// system-wide on Linux, so the publisher's publish_time stamps compare
// fine across the fork. The two sides talk over pipes:
//
//   parent -> child:  PORT <edge-port>    then  EXPECT <deliveries>
//   child -> parent:  READY               then  STATS k=v ...
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "edge/edge_server.hpp"
#include "edge/swarm.hpp"
#include "match/pub_match.hpp"
#include "router/broker_options.hpp"
#include "transport/broker_node.hpp"
#include "transport/client.hpp"
#include "util/flags.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

using namespace xroute;

namespace {

/// Nearest-rank percentile over a sorted sample vector.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

// The interest pool and the publication paths that exercise it. Pool
// rank 0 is the flash-crowd subscription; the last publication path
// matches nothing, so spurious fan-out would surface as a delivery
// mismatch, not silence.
const char* kPool[] = {"//quote", "/news//headline", "/a/b",
                       "/d//e",   "/misc/raw"};
const char* kDocPaths[] = {"/stock/quote",     "/news/world/headline",
                           "/a/b",             "/d/x/e",
                           "/stock/quote/bid", "/unmatched/path"};

constexpr std::size_t kPoolSize = sizeof(kPool) / sizeof(kPool[0]);

/// Zipf-ish deterministic interest assignment: pool rank j gets a client
/// share proportional to 1/(j+1). Shared by both processes, so the
/// parent can price the oracle without hearing from the child.
std::vector<std::size_t> clients_per_rank(std::size_t clients) {
  double harmonic = 0.0;
  for (std::size_t j = 0; j < kPoolSize; ++j) harmonic += 1.0 / (j + 1);
  std::vector<std::size_t> counts(kPoolSize, 0);
  std::size_t assigned = 0;
  for (std::size_t j = 0; j + 1 < kPoolSize; ++j) {
    counts[j] = static_cast<std::size_t>(clients / ((j + 1) * harmonic));
    assigned += counts[j];
  }
  counts[kPoolSize - 1] = clients - assigned;  // remainder to the tail
  return counts;
}

std::size_t rank_of_client(std::size_t index,
                           const std::vector<std::size_t>& counts) {
  for (std::size_t j = 0; j < counts.size(); ++j) {
    if (index < counts[j]) return j;
    index -= counts[j];
  }
  return counts.size() - 1;
}

/// One '\n'-terminated line from a pipe fd (blocking).
std::string read_line(int fd) {
  std::string line;
  char c = 0;
  while (read(fd, &c, 1) == 1 && c != '\n') line.push_back(c);
  return line;
}

void write_line(int fd, const std::string& line) {
  std::string out = line + "\n";
  [[maybe_unused]] ssize_t n = write(fd, out.data(), out.size());
}

// ---- child: the client swarm --------------------------------------------

int child_main(int in_fd, int out_fd, std::size_t clients, int loops,
               double timeout_ms) {
  std::istringstream port_line(read_line(in_fd));
  std::string tag;
  std::uint16_t port = 0;
  port_line >> tag >> port;
  if (tag != "PORT" || port == 0) return 2;

  edge::EdgeSwarm::Options options;
  options.port = port;
  options.clients = clients;
  options.loops = loops;
  options.heartbeat_interval_ms = 10000.0;
  std::vector<std::size_t> counts = clients_per_rank(clients);
  edge::EdgeSwarm swarm(options);
  swarm.set_interests([&counts](std::size_t index) {
    return std::vector<Xpe>{parse_xpe(kPool[rank_of_client(index, counts)])};
  });
  swarm.start();
  if (!swarm.wait_connected(clients, timeout_ms)) {
    std::cerr << "swarm: only " << swarm.connected() << "/" << clients
              << " connected (" << swarm.connect_failures() << " failures)\n";
    return 2;
  }
  if (!swarm.wait_lease_grants(clients, timeout_ms)) {
    std::cerr << "swarm: only " << swarm.lease_grants() << "/" << clients
              << " leases granted\n";
    return 2;
  }
  write_line(out_fd, "READY");

  std::istringstream expect_line(read_line(in_fd));
  std::uint64_t expected = 0;
  expect_line >> tag >> expected;
  if (tag != "EXPECT") return 2;
  bool complete = swarm.wait_publications(expected, timeout_ms);

  edge::EdgeSwarm::Latencies latencies = swarm.collect_latencies();
  std::sort(latencies.connect_ms.begin(), latencies.connect_ms.end());
  std::sort(latencies.subscribe_ms.begin(), latencies.subscribe_ms.end());
  std::sort(latencies.notify_ms.begin(), latencies.notify_ms.end());
  std::ostringstream stats;
  stats << "STATS complete=" << (complete ? 1 : 0)
        << " connected=" << swarm.connected()
        << " lease_grants=" << swarm.lease_grants()
        << " publications=" << swarm.publications()
        << " duplicates=" << swarm.duplicates()
        << " disconnects=" << swarm.disconnects()
        << " connect_p50=" << percentile(latencies.connect_ms, 0.50)
        << " connect_p99=" << percentile(latencies.connect_ms, 0.99)
        << " subscribe_p50=" << percentile(latencies.subscribe_ms, 0.50)
        << " subscribe_p99=" << percentile(latencies.subscribe_ms, 0.99)
        << " notify_p50=" << percentile(latencies.notify_ms, 0.50)
        << " notify_p95=" << percentile(latencies.notify_ms, 0.95)
        << " notify_p99=" << percentile(latencies.notify_ms, 0.99)
        << " notify_samples=" << latencies.notify_ms.size();
  write_line(out_fd, stats.str());
  swarm.stop();
  return complete ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("Edge swarm: leased clients, serialize-once fan-out");
  flags.define("clients", "10000", "simulated edge clients");
  flags.define("loops", "3", "swarm driver event loops");
  flags.define("reactors", "2", "edge server reactor threads");
  flags.define("pubs", "60", "documents published through the broker");
  flags.define("pub-gap-ms", "25", "pause between publications");
  flags.define("timeout-ms", "180000", "per-phase deadline");
  flags.define("out", "BENCH_edge.json", "output file");
  if (!flags.parse(argc, argv)) return 0;

  const std::size_t clients = flags.get_int("clients");
  const int loops = flags.get_int("loops");
  const int reactors = flags.get_int("reactors");
  const std::size_t pubs = flags.get_int("pubs");
  const double pub_gap_ms = flags.get_int("pub-gap-ms");
  const double timeout_ms = flags.get_int("timeout-ms");

  // Fork before any thread exists: both sides of the rig are
  // multi-threaded, and a post-thread fork inherits locked mutexes.
  int to_child[2], to_parent[2];
  if (pipe(to_child) != 0 || pipe(to_parent) != 0) {
    std::cerr << "edge_swarm: pipe failed\n";
    return 1;
  }
  pid_t pid = fork();
  if (pid < 0) {
    std::cerr << "edge_swarm: fork failed\n";
    return 1;
  }
  if (pid == 0) {
    close(to_child[1]);
    close(to_parent[0]);
    int rc = child_main(to_child[0], to_parent[1], clients, loops, timeout_ms);
    std::exit(rc);
  }
  close(to_child[0]);
  close(to_parent[1]);

  // ---- parent: broker + edge session layer + publisher ------------------
  transport::TransportBroker::Options broker_opts;
  broker_opts.id = 0;
  broker_opts.config.use_advertisements = false;
  transport::TransportBroker broker(broker_opts);
  broker.start();

  edge::EdgeServer::Options edge_opts;
  edge_opts.reactors = reactors;
  edge_opts.lease_ttl_ms = 60000.0;
  edge_opts.heartbeat_interval_ms = 5000.0;
  edge::EdgeServer edge_server(&broker, edge_opts);
  std::uint16_t edge_port = edge_server.start();
  write_line(to_child[1], "PORT " + std::to_string(edge_port));

  transport::TransportClient publisher{transport::TransportClient::Options{}};
  publisher.start("127.0.0.1", broker.port());
  if (!publisher.wait_connected(10000)) {
    std::cerr << "edge_swarm: publisher handshake failed\n";
    return 1;
  }

  if (read_line(to_parent[0]) != "READY") {
    std::cerr << "edge_swarm: swarm never reported ready\n";
    waitpid(pid, nullptr, 0);
    return 1;
  }
  // Peak gauges, sampled while every session is live and leased — after
  // the child exits they would read mid-teardown.
  std::size_t sessions_peak = edge_server.sessions_live();
  std::size_t interests_peak = edge_server.distinct_interests();

  // Price the oracle: the interest assignment is deterministic, so the
  // expected delivery total is exact — doc d owes one frame to every
  // client whose pool rank matches d's path.
  std::vector<std::size_t> counts = clients_per_rank(clients);
  constexpr std::size_t kDocCount = sizeof(kDocPaths) / sizeof(kDocPaths[0]);
  std::uint64_t expected = 0;
  std::uint64_t matched_pubs = 0;
  std::vector<Path> doc_paths;
  std::vector<Xpe> pool;
  for (std::size_t j = 0; j < kPoolSize; ++j) {
    pool.push_back(parse_xpe(kPool[j]));
  }
  for (std::size_t d = 0; d < kDocCount; ++d) {
    doc_paths.push_back(parse_path(kDocPaths[d]));
  }
  std::vector<std::uint64_t> per_doc(kDocCount, 0);
  for (std::size_t d = 0; d < kDocCount; ++d) {
    for (std::size_t j = 0; j < kPoolSize; ++j) {
      if (matches(doc_paths[d], pool[j])) per_doc[d] += counts[j];
    }
  }
  auto publish_start = std::chrono::steady_clock::now();
  for (std::size_t p = 0; p < pubs; ++p) {
    std::size_t d = p % kDocCount;
    PublishMsg msg;
    msg.path = doc_paths[d];
    msg.doc_id = p + 1;
    msg.doc_bytes = 200;
    msg.publish_time = edge::steady_ms();
    publisher.send(Message{msg});
    expected += per_doc[d];
    if (per_doc[d] > 0) ++matched_pubs;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(pub_gap_ms));
  }
  publisher.sync();
  write_line(to_child[1], "EXPECT " + std::to_string(expected));

  std::string stats_line = read_line(to_parent[0]);
  double publish_window_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - publish_start)
          .count();
  int child_status = 0;
  waitpid(pid, &child_status, 0);
  bool child_ok = WIFEXITED(child_status) && WEXITSTATUS(child_status) == 0;

  // Parse the child's k=v stats.
  std::map<std::string, std::string> stats;
  {
    std::istringstream in(stats_line);
    std::string token;
    in >> token;  // STATS
    while (in >> token) {
      auto eq = token.find('=');
      if (eq != std::string::npos) {
        stats[token.substr(0, eq)] = token.substr(eq + 1);
      }
    }
  }
  auto stat = [&](const std::string& key) -> std::string {
    auto it = stats.find(key);
    return it == stats.end() ? "0" : it->second;
  };

  std::uint64_t encodes = edge_server.encodes();
  std::uint64_t fanout = edge_server.fanout_frames();
  double encodes_per_fanout =
      matched_pubs == 0
          ? 0.0
          : static_cast<double>(encodes) / static_cast<double>(matched_pubs);
  double fanout_per_sec =
      publish_window_ms <= 0 ? 0.0 : 1000.0 * fanout / publish_window_ms;

  bool ok = child_ok && stat("duplicates") == "0" &&
            stat("publications") == std::to_string(expected) &&
            sessions_peak == clients && encodes == matched_pubs &&
            edge_server.slow_session_drops() == 0;

  std::ofstream out(flags.get_string("out"));
  out << "{\n"
      << "  \"bench\": \"edge_swarm\",\n"
      << "  \"ok\": " << (ok ? "true" : "false") << ",\n"
      << "  \"config\": {\n"
      << "    \"clients\": " << clients << ",\n"
      << "    \"loops\": " << loops << ",\n"
      << "    \"reactors\": " << reactors << ",\n"
      << "    \"pubs\": " << pubs << ",\n"
      << "    \"lease_ttl_ms\": " << edge_opts.lease_ttl_ms << "\n"
      << "  },\n"
      << "  \"swarm\": {\n"
      << "    \"connected\": " << stat("connected") << ",\n"
      << "    \"lease_grants\": " << stat("lease_grants") << ",\n"
      << "    \"expected_deliveries\": " << expected << ",\n"
      << "    \"publications\": " << stat("publications") << ",\n"
      << "    \"duplicates\": " << stat("duplicates") << ",\n"
      << "    \"disconnects\": " << stat("disconnects") << ",\n"
      << "    \"connect_p50_ms\": " << stat("connect_p50") << ",\n"
      << "    \"connect_p99_ms\": " << stat("connect_p99") << ",\n"
      << "    \"subscribe_p50_ms\": " << stat("subscribe_p50") << ",\n"
      << "    \"subscribe_p99_ms\": " << stat("subscribe_p99") << ",\n"
      << "    \"notify_p50_ms\": " << stat("notify_p50") << ",\n"
      << "    \"notify_p95_ms\": " << stat("notify_p95") << ",\n"
      << "    \"notify_p99_ms\": " << stat("notify_p99") << ",\n"
      << "    \"notify_samples\": " << stat("notify_samples") << "\n"
      << "  },\n"
      << "  \"edge\": {\n"
      << "    \"sessions_peak\": " << sessions_peak << ",\n"
      << "    \"leases_granted\": " << edge_server.leases_granted() << ",\n"
      << "    \"leases_expired\": " << edge_server.leases_expired() << ",\n"
      << "    \"distinct_interests\": " << interests_peak << ",\n"
      << "    \"upstream_subscribes\": " << edge_server.upstream_subscribes()
      << ",\n"
      << "    \"matched_pubs\": " << matched_pubs << ",\n"
      << "    \"encodes\": " << encodes << ",\n"
      << "    \"encodes_per_fanout\": " << encodes_per_fanout << ",\n"
      << "    \"fanout_frames\": " << fanout << ",\n"
      << "    \"fanout_frames_per_sec\": " << fanout_per_sec << ",\n"
      << "    \"slow_session_drops\": " << edge_server.slow_session_drops()
      << ",\n"
      << "    \"send_shared_bytes\": " << edge_server.send_shared_bytes()
      << "\n"
      << "  }\n"
      << "}\n";
  out.close();
  std::cout << "wrote " << flags.get_string("out") << " (ok="
            << (ok ? "true" : "false") << ", clients=" << stat("connected")
            << ", encodes_per_fanout=" << encodes_per_fanout
            << ", notify_p99_ms=" << stat("notify_p99") << ")\n";

  publisher.stop();
  edge_server.stop();
  broker.stop();
  return ok ? 0 : 1;
}
