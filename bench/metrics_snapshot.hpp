// Embeds a MetricsRegistry dump inside a hand-written BENCH_*.json file.
//
// The bench binaries write their JSON by hand (no serialisation library);
// this helper re-indents the registry's own write_json output so a full
// metrics snapshot nests cleanly as one member of the bench object:
//
//   "metrics": {
//     "counters": [...], "gauges": [...], "histograms": [...]
//   }
//
// The caller supplies the surrounding commas and newlines.
#pragma once

#include <ostream>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"

namespace xroute {

/// Writes `"<key>": { ... }` from an already-captured registry dump
/// (the exact text of MetricsRegistry::write_json), re-indented by
/// `indent` spaces. Useful when the simulator that owned the registry is
/// gone by the time the JSON file is written.
inline void emit_metrics_snapshot(std::ostream& os,
                                  const std::string& registry_json,
                                  const std::string& key, int indent = 2) {
  std::string json = registry_json;
  while (!json.empty() && json.back() == '\n') json.pop_back();
  if (json.empty()) json = "{}";
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << pad << "\"" << key << "\": ";
  for (char c : json) {
    os << c;
    if (c == '\n') os << pad;
  }
}

/// As above, straight from a live registry.
inline void emit_metrics_snapshot(std::ostream& os,
                                  const MetricsRegistry& registry,
                                  const std::string& key, int indent = 2) {
  std::ostringstream dump;
  registry.write_json(dump);
  emit_metrics_snapshot(os, dump.str(), key, indent);
}

}  // namespace xroute
