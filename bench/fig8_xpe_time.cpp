// Fig. 8 — XPE processing time with and without covering.
//
// The paper issues 5000 XPEs per DTD and measures the per-XPE processing
// time: without covering every XPE is matched against all advertisements;
// with covering, an XPE found covered skips advertisement matching
// entirely. NITF (our NEWS) derives ~35x more advertisements than PSD, so
// it benefits more (paper: up to 49.2% improvement for NITF XPEs).
#include <iostream>
#include <vector>

#include "core/experiment.hpp"
#include "adv/derive.hpp"
#include "index/subscription_tree.hpp"
#include "match/rec_adv_match.hpp"
#include "router/routing_tables.hpp"
#include "util/flags.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/xpath_gen.hpp"

using namespace xroute;

namespace {

struct Series {
  std::vector<double> with_covering_ms;     // cumulative-average per batch
  std::vector<double> without_covering_ms;  // cumulative-average per batch
  std::size_t covered = 0;
  std::size_t advertisements = 0;
};

Series run_dtd(const Dtd& dtd, std::size_t total, std::size_t batch,
               std::uint64_t seed) {
  Series series;
  auto derived = derive_advertisements(dtd);
  series.advertisements = derived.advertisements.size();

  Srt srt;
  for (const Advertisement& a : derived.advertisements) srt.add(a, IfaceId{0});

  XpathGenOptions xopts;
  xopts.count = total;
  xopts.seed = seed;
  xopts.wildcard_prob = 0.15;
  xopts.descendant_prob = 0.15;
  std::vector<Xpe> xpes = generate_xpaths(dtd, xopts);
  if (xpes.size() < total) {
    std::cout << "note: only " << xpes.size() << " distinct XPEs available\n";
  }

  // Without covering: every XPE matched against all advertisements.
  {
    Stopwatch watch;
    std::size_t done = 0;
    for (const Xpe& x : xpes) {
      volatile bool sink = false;
      for (const auto& entry : srt.entries()) {
        sink = sink | srt.entry_overlaps(*entry, x);
      }
      if (++done % batch == 0) {
        series.without_covering_ms.push_back(watch.elapsed_ms() /
                                             static_cast<double>(done));
      }
    }
  }

  // With covering: insert into the subscription tree first; covered XPEs
  // skip advertisement matching (paper §5, "XPE Processing Time"). The
  // covering check is the insertion descent itself (no full-tree sweep:
  // track_covered off — upstream unsubscription is a routing concern, not
  // part of the per-XPE processing-time comparison).
  {
    SubscriptionTree::Options topts;
    topts.track_covered = false;
    SubscriptionTree tree(topts);
    Stopwatch watch;
    std::size_t done = 0;
    for (const Xpe& x : xpes) {
      auto result = tree.insert(x, IfaceId{0});
      if (result.was_new && !result.covered_by_existing) {
        volatile bool sink = false;
        for (const auto& entry : srt.entries()) {
          sink = sink | srt.entry_overlaps(*entry, x);
        }
      } else {
        ++series.covered;
      }
      if (++done % batch == 0) {
        series.with_covering_ms.push_back(watch.elapsed_ms() /
                                          static_cast<double>(done));
      }
    }
  }
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("Fig. 8: XPE processing time with/without covering");
  flags.define("count", "5000", "XPEs to issue (paper: 5000)");
  flags.define("batch", "500", "reporting batch size (paper: 500)");
  flags.define("seed", "8", "workload seed");
  if (!flags.parse(argc, argv)) return 0;

  const std::size_t count = flags.get_int("count");
  const std::size_t batch = flags.get_int("batch");

  Series news = run_dtd(news_dtd(), count, batch, flags.get_int64("seed"));
  Series psd = run_dtd(psd_dtd(), count, batch, flags.get_int64("seed") + 1);

  std::cout << "Fig. 8 reproduction: per-XPE processing time (ms, cumulative"
            << " average)\n";
  std::cout << "advertisements: NEWS " << news.advertisements << ", PSD "
            << psd.advertisements << " (paper: NITF ~35x PSD)\n";
  std::cout << "covered XPEs: NEWS " << news.covered << "/" << count
            << ", PSD " << psd.covered << "/" << count << "\n\n";

  TextTable table({"#XPEs", "NEWS with cov", "NEWS without cov",
                   "PSD with cov", "PSD without cov"});
  std::size_t rows = std::min(
      std::min(news.with_covering_ms.size(), news.without_covering_ms.size()),
      std::min(psd.with_covering_ms.size(), psd.without_covering_ms.size()));
  for (std::size_t i = 0; i < rows; ++i) {
    table.add_row({TextTable::fmt((i + 1) * batch),
                   TextTable::fmt(news.with_covering_ms[i], 4),
                   TextTable::fmt(news.without_covering_ms[i], 4),
                   TextTable::fmt(psd.with_covering_ms[i], 4),
                   TextTable::fmt(psd.without_covering_ms[i], 4)});
  }
  table.print(std::cout);

  auto improvement = [](const Series& s) {
    double with = s.with_covering_ms.back();
    double without = s.without_covering_ms.back();
    return 100.0 * (without - with) / without;
  };
  std::cout << "\ncovering improves XPE processing time by "
            << TextTable::fmt(improvement(news), 1) << "% (NEWS) and "
            << TextTable::fmt(improvement(psd), 1)
            << "% (PSD); the paper reports up to 49.2% for NITF.\n";
  return 0;
}
