// Table 3 — Network traffic and notification delay, 127-broker overlay.
//
// The paper's large overlay: a 7-level binary tree (127 brokers, 64 leaf
// subscribers), same workload family as Table 2. The benefit of
// advertisements + covering + merging grows with network size.
#include <iostream>

#include "network_bench.hpp"
#include "util/flags.hpp"
#include "workload/dtd_corpus.hpp"

using namespace xroute;
using namespace xroute::benchsupport;

int main(int argc, char** argv) {
  Flags flags("Table 3: 127-broker network, strategy matrix");
  flags.define("subs-per-subscriber", "60", "XPEs per subscriber (paper: 1000)");
  flags.define("docs", "10", "documents to publish (paper: 50)");
  flags.define("imperfect", "0.1", "imperfect-merging tolerance");
  flags.define("seed", "6", "workload seed");
  flags.define("processing-scale", "1.0",
               "fold measured broker processing time into simulated delay");
  flags.define("full", "false", "paper-scale workload (much slower)");
  if (!flags.parse(argc, argv)) return 0;

  const bool full = flags.get_bool("full");
  const std::size_t subs_each =
      full ? 1000 : flags.get_int("subs-per-subscriber");
  const std::size_t docs = full ? 50 : flags.get_int("docs");
  const std::size_t levels = 7;  // 127 brokers, 64 leaf subscribers

  Dtd dtd = psd_dtd();
  NetworkWorkload w = make_network_workload(
      dtd, /*subscribers=*/64, subs_each, docs, flags.get_int64("seed"));

  std::cout << "Table 3 reproduction: 127-broker binary tree, 64 subscribers"
            << " x " << subs_each << " XPEs, " << docs << " documents ("
            << w.publications << " publications)\n\n";

  TextTable table({"Method", "Network Traffic", "(adv/sub/pub)", "Delay (ms)",
                   "RTS total", "in-net FPs"});
  for (const StrategySpec& spec :
       paper_strategy_matrix(flags.get_double("imperfect"))) {
    NetworkRun run =
        run_strategy(dtd, w, spec.strategy, levels, flags.get_int64("seed"),
                     flags.get_double("processing-scale"));
    table.add_row({spec.name, TextTable::fmt(run.traffic),
                   TextTable::fmt(run.adv_msgs) + "/" +
                       TextTable::fmt(run.sub_msgs) + "/" +
                       TextTable::fmt(run.pub_msgs),
                   TextTable::fmt(run.delay_ms),
                   TextTable::fmt(run.total_prt),
                   TextTable::fmt(run.false_positives)});
  }
  table.print(std::cout);
  std::cout << "\npaper shape: in the larger overlay the savings grow —\n"
            << "adv+cov cuts traffic to ~50% of the baseline and covering\n"
            << "cuts the delay by ~5x; merging compacts tables further.\n";
  return 0;
}
